"""Columnar incremental search-state engine for the exact coloring search.

:class:`~repro.core.coloring.ColoringSearch` keeps incremental live state —
per-cluster refcounts, a covered-tid map, per-constraint surviving counts —
as Python dicts, and re-derives per-candidate contribution sums on every
consistency check.  After PR 6 vectorized candidate *enumeration*, that
dict-and-tuple machinery was the last frozenset hot path multiplied by the
exponential search.  This module is its columnar twin, active only on the
vectorized backend and **byte-identical** to the reference path by
construction:

* **Cluster registry** — every distinct cluster is interned once to a dense
  id carrying its sorted row-index array and its per-constraint
  contribution record as two aligned ``int64`` arrays (node indices,
  deltas).  ``apply``/``revert`` are then O(|cluster| + touched σ) fancy
  adds on a covered refcount array and the admission-counter array instead
  of per-tid dict updates.
* **Window checks** — ``consistent`` accumulates candidate deltas into a
  scratch vector and window-checks ``counts + Δ ≤ uppers`` against the live
  counter arrays; ``consistent_count`` reuses the same live counters for
  every candidate instead of re-deriving contribution sums per call.
* **Batched dynamic candidates** — the residual-pool orderings run in rank
  space over the uncovered pool (the pool is sorted ascending, so
  ``argsort(dist·n + rank)`` reproduces the reference
  ``lexsort((tids, dist))`` exactly), all seeds in one broadcasted Hamming
  gather, all subsets partitioned in lockstep, and every novel cluster's
  contributions scored through :meth:`RelationIndex.preserved_count_batch`
  — one segment reduction per constraint per expansion.

Contribution memo
-----------------
:class:`ContributionMemo` is a process-global, content-addressed LRU shared
in spirit with :class:`~repro.core.enumeration.EnumerationMemo`: records
are keyed on the *values* of the constraint set (per-node attrs, target
values, QI flags) and of the cluster's rows over the constraint attrs — not
on tids or code matrices — so identical content shares work across
searches, across the parallel scheduler's worker-side components, across
:func:`~repro.core.approx.escalate_from_budget` warm starts (the
approximation tier resolves contributions through the same memo the exact
tier populated) and across the fresh relations the streaming engine builds
per scoped recompute.  Contribution records are pure values (no RNG
involvement), so memo temperature is invisible to search results by
construction; only the hit/miss tallies differ, which the observability
layer therefore reports as deltas around each DIVA run, never per search.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Sequence
from typing import Optional

import numpy as np

from .graph import ConstraintGraph
from .index import RelationIndex
from .suppress import normalize_clustering

Clustering = tuple  # tuple[frozenset, ...]

_EMPTY_I64 = np.empty(0, dtype=np.int64)


# -- contribution memo ---------------------------------------------------------


def _robust_sort_key(row: tuple) -> tuple:
    """Total order over value tuples even when a column mixes types
    (suppressed relations interleave ``STAR`` strings with numerics)."""
    return tuple((type(v).__name__, repr(v)) for v in row)


class ContributionMemo:
    """Process-global, content-addressed LRU of contribution records.

    One entry is the dense per-QI-node surviving-count delta vector of one
    cluster under one constraint set.  Thread-safe: worker-side searches of
    the parallel thread executor share it.  Like the enumeration memo,
    generation happens outside the lock; a racing duplicate store is
    idempotent.
    """

    #: Entries retained (LRU).  Records are a handful of ints each, so the
    #: cap is sized for many searches' distinct clusters, not memory.
    CAPACITY = 32_768

    def __init__(self, capacity: int = CAPACITY):
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, tuple] = OrderedDict()
        self._hits = 0
        self._misses = 0

    def stats(self) -> dict[str, int]:
        """Cumulative hit/miss tallies (read as deltas, like cache_stats)."""
        return {
            "search_memo_hits": self._hits,
            "search_memo_misses": self._misses,
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def lookup(self, key: tuple) -> Optional[tuple]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry

    def store(self, key: tuple, deltas: tuple) -> None:
        with self._lock:
            self._entries[key] = deltas
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)


_MEMO = ContributionMemo()


def get_contribution_memo() -> ContributionMemo:
    """The process-global contribution memo."""
    return _MEMO


# -- contribution resolution ---------------------------------------------------


class ContributionResolver:
    """Memo-aware batched contribution records for one (index, Σ-graph).

    Shared by the exact search's engine and the approximation solver so a
    budget-escalated warm start re-reads the records the exact tier already
    resolved.  ``records`` returns, per cluster, the same
    ``(node index, surviving-count delta)`` pairs
    ``ColoringSearch._cluster_contributions`` produces — QI-touching nodes
    in graph order, zero deltas dropped.
    """

    __slots__ = (
        "index",
        "qi",
        "qi_nodes",
        "node_indices",
        "_set_sig",
        "_positions",
        "_books",
    )

    def __init__(self, index: RelationIndex, graph: ConstraintGraph):
        schema = index.schema
        self.index = index
        self.qi = set(schema.qi_names)
        self.qi_nodes = [
            n for n in graph if any(a in self.qi for a in n.constraint.attrs)
        ]
        self.node_indices = [n.index for n in self.qi_nodes]
        # Constraint-set signature: per QI node, the constraint's content
        # (attrs, target values, QI flags) in node order.  Values, not
        # codes — stable across the fresh relations streaming rebuilds.
        self._set_sig = tuple(
            (
                n.constraint.attrs,
                n.constraint.values,
                tuple(a in self.qi for a in n.constraint.attrs),
            )
            for n in self.qi_nodes
        )
        positions = sorted(
            {
                schema.position(a)
                for n in self.qi_nodes
                for a in n.constraint.attrs
            }
        )
        self._positions = np.asarray(positions, dtype=np.intp)
        books: list[np.ndarray] = []
        for p in positions:
            book = self.index.codebooks[p]
            inverse: list = [None] * len(book)
            for value, code in book.items():
                inverse[code] = value
            books.append(np.asarray(inverse, dtype=object))
        self._books = books

    def signatures(self, clusters: Sequence[frozenset]) -> list[tuple]:
        """Content identity of each cluster: the sorted multiset of its
        rows' values over the union of constraint attributes.

        One gather of the concatenated code block, one object fancy-index
        per column to translate codes back to values, then a per-cluster
        canonicalizing sort — no per-cell Python work.
        """
        index = self.index
        pos = self._positions
        lengths = [len(c) for c in clusters]
        if not sum(lengths):
            return [() for _ in clusters]
        concat = index._concat_rows(clusters, sum(lengths))
        block = index.codes[concat[:, None], pos[None, :]]
        columns = [
            book[block[:, j]].tolist() for j, book in enumerate(self._books)
        ]
        value_rows = list(zip(*columns))
        sigs: list[tuple] = []
        offset = 0
        for length in lengths:
            rows = value_rows[offset : offset + length]
            offset += length
            try:
                rows.sort()
            except TypeError:  # mixed-type column (e.g. STAR among ints)
                rows.sort(key=_robust_sort_key)
            sigs.append(tuple(rows))
        return sigs

    def record_vectors(self, clusters: Sequence[frozenset]) -> list[tuple]:
        """Dense per-QI-node delta vectors, one per cluster, memo-first.

        Misses are evaluated through one
        :meth:`RelationIndex.preserved_count_batch` segment reduction per
        constraint and written back to the memo.
        """
        if not self.qi_nodes:
            return [() for _ in clusters]
        memo = get_contribution_memo()
        sigs = self.signatures(clusters)
        out: list[Optional[tuple]] = [None] * len(clusters)
        missing: list[int] = []
        for i, sig in enumerate(sigs):
            rec = memo.lookup((self._set_sig, sig))
            if rec is None:
                missing.append(i)
            else:
                out[i] = rec
        if missing:
            miss_clusters = [clusters[i] for i in missing]
            per_node = [
                self.index.preserved_count_batch(miss_clusters, n.constraint)
                for n in self.qi_nodes
            ]
            for pos_in_batch, i in enumerate(missing):
                rec = tuple(int(counts[pos_in_batch]) for counts in per_node)
                memo.store((self._set_sig, sigs[i]), rec)
                out[i] = rec
        return out  # type: ignore[return-value]

    def records(
        self, clusters: Sequence[frozenset]
    ) -> list[tuple[tuple[int, int], ...]]:
        """Sparse ``(node index, delta)`` records, zero deltas dropped —
        the exact shape of ``ColoringSearch._cluster_contributions``."""
        idxs = self.node_indices
        return [
            tuple((idxs[j], d) for j, d in enumerate(vec) if d)
            for vec in self.record_vectors(clusters)
        ]


# -- lockstep partition kernel -------------------------------------------------


def _lockstep_partition(
    qi: np.ndarray, subsets: np.ndarray, k: int
) -> list[list[np.ndarray]]:
    """Greedy k-partition of every row of ``subsets`` (B × s ranks into
    ``qi``'s row space), in lockstep — the search-state twin of
    ``enumeration._batched_greedy``.

    Per round: one batched seed-distance gather, one per-row argsort of the
    composite ``dist·n + rank`` key (ranks are unique and < n, so this is
    exactly the per-subset reference ``np.lexsort((remaining, dist))``),
    one block slice.  Equal-size subsets run the same number of rounds.
    """
    rounds: list[np.ndarray] = []
    rem = subsets
    n = np.int64(qi.shape[0])
    batch = np.arange(rem.shape[0], dtype=np.intp)[:, None]
    while rem.shape[1] >= 2 * k:
        seeds = rem[:, 0]
        dist = (qi[rem] != qi[seeds][:, None, :]).sum(axis=2, dtype=np.int64)
        order = np.argsort(dist * n + rem, axis=1)
        rem = rem[batch, order]
        rounds.append(rem[:, :k])
        rem = rem[:, k:]
    return [
        [r[b] for r in rounds] + [rem[b]] for b in range(subsets.shape[0])
    ]


# -- the engine ----------------------------------------------------------------


class SearchState:
    """Columnar live-assignment state for one coloring search.

    Mirrors the reference dict state (``_cluster_refs`` / ``_covered`` /
    ``_counts``) as a cluster registry plus refcount and counter arrays.
    All mutation goes through :meth:`apply`/:meth:`revert`; the dict-shaped
    views exist for tests and debugging, never for the hot path.
    """

    def __init__(
        self,
        index: RelationIndex,
        graph: ConstraintGraph,
        k: int,
        candidates: dict[int, list[Clustering]],
    ):
        self.index = index
        self.graph = graph
        self.k = k
        self.resolver = ContributionResolver(index, graph)
        n_nodes = len(graph)
        self._counts = np.zeros(n_nodes, dtype=np.int64)
        self._uppers = np.zeros(n_nodes, dtype=np.int64)
        for node in graph:
            self._uppers[node.index] = node.constraint.upper
        self._scratch = np.zeros(n_nodes, dtype=np.int64)
        self._covered = np.zeros(len(index), dtype=np.int32)
        # Cluster registry: interned id → sparse record / refs.  The row
        # and delta *arrays* materialize on first consistency touch — most
        # registered static candidates are never evaluated, so eager
        # array-building would dominate construction.
        self._cid: dict[frozenset, int] = {}
        self._clusters: list[frozenset] = []
        self._records: list[tuple[tuple[int, int], ...]] = []
        self._rows: list[Optional[np.ndarray]] = []
        self._cidx: list[Optional[np.ndarray]] = []
        self._cdelta: list[Optional[np.ndarray]] = []
        self._refs: list[int] = []
        # Per-node sorted target pools (tids, rows), built on first use.
        self._pools: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        # Effort tallies (deterministic: independent of memo temperature —
        # ``batch_scored`` counts clusters *resolved* through the batched
        # path, whether the memo or the kernel supplied the record).
        self.delta_applies = 0
        self.delta_reverts = 0
        self.batch_scored = 0
        static: list[frozenset] = []
        seen: set[frozenset] = set()
        for pool in candidates.values():
            for clustering in pool:
                for cluster in clustering:
                    if cluster not in seen:
                        seen.add(cluster)
                        static.append(cluster)
        self.register(static)

    # -- registry --------------------------------------------------------------

    def register(self, clusters: Sequence[frozenset]) -> None:
        """Intern novel clusters: rows + batched contribution records."""
        novel: list[frozenset] = []
        seen: set[frozenset] = set()
        for cluster in clusters:
            if cluster not in self._cid and cluster not in seen:
                seen.add(cluster)
                novel.append(cluster)
        if not novel:
            return
        records = self.resolver.records(novel)
        self.batch_scored += len(novel)
        for cluster, record in zip(novel, records):
            self._cid[cluster] = len(self._refs)
            self._clusters.append(cluster)
            self._records.append(record)
            self._rows.append(None)
            self._cidx.append(None)
            self._cdelta.append(None)
            self._refs.append(0)

    def _cid_of(self, cluster: frozenset) -> int:
        cid = self._cid.get(cluster)
        if cid is None:
            self.register([cluster])
            cid = self._cid[cluster]
        return cid

    def _materialize(
        self, cid: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Row and delta arrays of one interned cluster, built on first
        consistency touch from the registered sparse record."""
        rows = self._rows[cid]
        if rows is None:
            rows = self._rows[cid] = self.index.rows_of(self._clusters[cid])
            record = self._records[cid]
            if record:
                self._cidx[cid] = np.fromiter(
                    (j for j, _ in record), dtype=np.int64, count=len(record)
                )
                self._cdelta[cid] = np.fromiter(
                    (d for _, d in record), dtype=np.int64, count=len(record)
                )
            else:
                self._cidx[cid] = _EMPTY_I64
                self._cdelta[cid] = _EMPTY_I64
        return rows, self._cidx[cid], self._cdelta[cid]

    def contributions(self, cluster: frozenset) -> tuple[tuple[int, int], ...]:
        """Sparse contribution record of one cluster (registers it)."""
        return self._records[self._cid_of(cluster)]

    # -- live-state transitions ------------------------------------------------

    def consistent(self, candidate: Clustering) -> bool:
        """Reference ``_consistent`` semantics as array window checks:
        disjoint-or-equal via the covered refcount array, upper bounds via
        ``counts + Δ ≤ uppers`` over the live counter arrays."""
        scratch = self._scratch
        touched = False
        ok = True
        for cluster in candidate:
            cid = self._cid_of(cluster)
            if self._refs[cid]:
                continue  # identical cluster already chosen: nothing new
            rows, idx, delta = self._materialize(cid)
            if rows.size and self._covered[rows].any():
                ok = False  # partial overlap with a chosen cluster
                break
            if idx.size:
                scratch[idx] += delta
                touched = True
        if touched:
            if ok:
                # Applied candidates keep counts ≤ uppers invariant, so the
                # full-vector window check equals the touched-σ-only check.
                ok = bool(((self._counts + scratch) <= self._uppers).all())
            scratch[:] = 0
        return ok

    def consistent_count(self, candidates: Sequence[Clustering]) -> int:
        """Consistent candidates against the live counters — no per-call
        contribution re-derivation (each cluster's delta arrays are
        interned once)."""
        return sum(1 for candidate in candidates if self.consistent(candidate))

    def apply(self, candidate: Clustering) -> None:
        for cluster in candidate:
            cid = self._cid_of(cluster)
            refs = self._refs[cid]
            self._refs[cid] = refs + 1
            if refs == 0:
                rows, idx, delta = self._materialize(cid)
                if rows.size:
                    self._covered[rows] += 1
                if idx.size:
                    self._counts[idx] += delta
                self.delta_applies += 1

    def revert(self, candidate: Clustering) -> None:
        for cluster in candidate:
            cid = self._cid[cluster]
            refs = self._refs[cid] - 1
            self._refs[cid] = refs
            if refs == 0:
                rows, idx, delta = self._materialize(cid)
                if rows.size:
                    self._covered[rows] -= 1
                if idx.size:
                    self._counts[idx] -= delta
                self.delta_reverts += 1

    # -- dynamic candidates ----------------------------------------------------

    def _pool(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        cached = self._pools.get(index)
        if cached is None:
            node = self.graph.node(index)
            tids = np.fromiter(
                sorted(node.target_tids),
                dtype=np.int64,
                count=len(node.target_tids),
            )
            rows = self.index.rows_of(tids.tolist())
            cached = self._pools[index] = (tids, rows)
        return cached

    def dynamic_candidates(self, index: int) -> list[Clustering]:
        """Residual-pool clusterings, byte-identical to the reference
        ``ColoringSearch._dynamic_candidates`` (see its docstring for the
        algorithm), with all seeds ordered in one broadcasted Hamming
        gather, all subsets partitioned in lockstep rank space, and novel
        clusters contribution-scored in one batch per constraint."""
        node = self.graph.node(index)
        sigma = node.constraint
        if not any(a in self.resolver.qi for a in sigma.attrs):
            return []  # globally determined; the static [()] suffices
        have = int(self._counts[index])
        need = max(0, sigma.lower - have)
        if need == 0:
            # Lower bound already met by shared clusters: color with the
            # empty clustering (upper bounds were enforced as they grew).
            return [()]
        tgt_tids, tgt_rows = self._pool(index)
        uncovered = self._covered[tgt_rows] == 0
        pool = tgt_tids[uncovered]
        n = int(pool.size)
        size = max(self.k, need)
        if size > n or have + size > sigma.upper:
            return []
        # Seed orderings in rank space: the pool is sorted ascending, so
        # the composite-key argsort in seed_rank_orders reproduces the
        # reference rank_by_hamming prefix exactly.
        step = max(1, n // 3)
        seed_ranks = np.arange(0, n, step, dtype=np.int64)[:3]
        qi, order = self.index.seed_rank_orders(tgt_rows[uncovered], seed_ranks)
        subsets = order[:, :size]
        # Identical subsets partition identically: dedup before the
        # lockstep greedy, rehydrate per seed afterwards.
        subset_keys = [tuple(subsets[s].tolist()) for s in range(len(seed_ranks))]
        unique: dict[tuple, int] = {}
        for key in subset_keys:
            if key not in unique:
                unique[key] = len(unique)
        stacked = np.asarray(list(unique), dtype=np.int64)
        parts = _lockstep_partition(qi, stacked, self.k)
        pool_list = pool.tolist()
        out: list[Clustering] = []
        seen: set[tuple] = set()
        for key in subset_keys:
            blocks = parts[unique[key]]
            clustering = normalize_clustering(
                tuple(
                    frozenset(pool_list[r] for r in block.tolist())
                    for block in blocks
                )
            )
            dedup_key = tuple(tuple(sorted(c)) for c in clustering)
            if dedup_key not in seen:
                seen.add(dedup_key)
                out.append(clustering)
        # One batched contribution pass per expansion for every novel
        # cluster the residual pools produced.
        self.register([c for clustering in out for c in clustering])
        return out

    # -- dict-shaped views (tests / debugging, not the hot path) ---------------

    def counts_view(self) -> dict[int, int]:
        return {node.index: int(self._counts[node.index]) for node in self.graph}

    def uppers_view(self) -> dict[int, int]:
        return {node.index: int(self._uppers[node.index]) for node in self.graph}

    def cluster_refs_view(self) -> dict[frozenset, int]:
        return {
            cluster: self._refs[cid]
            for cluster, cid in self._cid.items()
            if self._refs[cid]
        }

    def covered_view(self) -> dict[int, int]:
        rows = np.nonzero(self._covered)[0]
        tids = self.index.tids[rows]
        return {
            int(t): int(c)
            for t, c in zip(tids.tolist(), self._covered[rows].tolist())
        }

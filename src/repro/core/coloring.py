"""The backtracking coloring search (paper Algorithms 3 and 4).

Coloring a node = assigning it one of its candidate clusterings.  An
assignment is *consistent* (paper Section 3.2's two conditions) iff:

1. **Disjoint-or-equal** — every cluster of the candidate is either disjoint
   from, or identical to, every already-assigned cluster.  Overlapping
   unequal clusters would not suppress into QI-groups.
2. **Upper bounds preserved** — the union of assigned clusterings (clusters
   deduplicated, since two constraints may share a cluster) must not push
   any constraint's surviving target-value count above its λr.

The search is exact backtracking; the strategy object decides the node and
candidate order (that ordering is the entire difference between DIVA-Basic,
MinChoice and MaxFanOut).  Search effort statistics are recorded so the
benchmarks can expose Basic's blow-up.

For speed the search keeps incremental state: each distinct cluster's
contribution to each constraint's surviving count is precomputed once
(a cluster contributes |cluster| to σ iff it is uniform on σ's attributes
with σ's target values), and the live assignment maintains per-cluster
refcounts, a covered-tid map and per-constraint running counts, so a
consistency check costs O(|candidate clusters| × cluster size) instead of
re-suppressing the union.

Cluster contributions and the dynamic-candidate similarity orderings run on
the shared columnar :class:`~repro.core.index.RelationIndex` (mask and
uniformity reductions over integer code matrices) unless the reference
kernel backend is active, in which case the retained pure-Python paths are
used — see :mod:`repro.core.index`.  On the vectorized backend the whole
incremental live state additionally moves into the columnar
:class:`~repro.core.searchstate.SearchState` engine (counter arrays, a
covered-row refcount vector, an interned cluster registry backed by the
process-global contribution memo); the dict-based state below remains the
reference semantics the engine must reproduce byte for byte.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from dataclasses import fields as dataclass_fields
from typing import Optional

import numpy as np

from .. import obs
from ..data.relation import Relation
from .clusterings import (
    enumerate_clusterings,
    greedy_k_partition,
    preserved_count,
    preserved_count_reference,
    qi_hamming_rows,
)
from .constraints import ConstraintSet
from .errors import ReproError
from .graph import ConstraintGraph, build_graph
from .index import get_index, vectorized_enabled
from .searchstate import SearchState
from .strategies import SelectionStrategy, make_strategy
from .suppress import normalize_clustering

Clustering = tuple  # tuple[frozenset, ...]


class SearchBudgetExceeded(ReproError):
    """The coloring search hit its step budget before finishing.

    ``partial`` always carries the ``stats`` (so best-effort callers can
    report effort) and the deepest live ``assignment`` snapshot (node index
    → clustering) at the moment the budget ran out, which the ``auto``
    solver tier feeds to :class:`~repro.core.approx.ApproxSolver` as a warm
    start instead of restarting cold.
    """

    def __init__(self, message: str, partial: Optional[dict] = None):
        super().__init__(message)
        self.partial = partial or {}

    def __reduce__(self):
        # Default exception pickling re-calls ``__init__(*args)`` and would
        # silently drop ``partial`` on its way back from a process pool.
        return (type(self), (self.args[0], self.partial))


@dataclass
class SearchStats:
    """Effort counters for one coloring search.

    ``prunes`` counts candidates rejected by the consistency check without
    descending (the "pruned branch" statistic systematic-search anonymizers
    report); the other counters match the paper's effort measures.
    """

    nodes_expanded: int = 0
    candidates_tried: int = 0
    backtracks: int = 0
    consistency_checks: int = 0
    prunes: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "nodes_expanded": self.nodes_expanded,
            "candidates_tried": self.candidates_tried,
            "backtracks": self.backtracks,
            "consistency_checks": self.consistency_checks,
            "prunes": self.prunes,
        }

    def merge(self, other: "SearchStats") -> "SearchStats":
        """Fold another search's counters into this one (returns self).

        Driven by :func:`dataclasses.fields` so a counter added to the
        dataclass is merged automatically — ``tests/test_parallel.py``
        asserts the field set stays in sync with :meth:`as_dict`.
        """
        for f in dataclass_fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def __iadd__(self, other: "SearchStats") -> "SearchStats":
        return self.merge(other)


@dataclass
class ColoringResult:
    """Outcome of DiverseClustering.

    ``assignment`` maps node index → clustering; ``clustering`` is the merged
    SΣ (deduplicated clusters); ``satisfied`` lists the constraints covered;
    ``stats`` the search counters.
    """

    success: bool
    assignment: dict[int, Clustering] = field(default_factory=dict)
    clustering: tuple = ()
    satisfied: tuple = ()
    dropped: tuple = ()
    stats: SearchStats = field(default_factory=SearchStats)


def clusters_consistent(
    candidate: Sequence[frozenset], chosen: Sequence[frozenset]
) -> bool:
    """Condition 1: disjoint-or-equal against every already-chosen cluster."""
    for cluster in candidate:
        for other in chosen:
            if cluster != other and cluster & other:
                return False
    return True


def merged_clusters(
    assignment: dict[int, Clustering], extra: Sequence[frozenset] = ()
) -> tuple[frozenset, ...]:
    """Union of all assigned clusters plus ``extra``, deduplicated."""
    seen: set[frozenset] = set()
    out: list[frozenset] = []
    for clustering in assignment.values():
        for cluster in clustering:
            if cluster not in seen:
                seen.add(cluster)
                out.append(cluster)
    for cluster in extra:
        if cluster not in seen:
            seen.add(cluster)
            out.append(cluster)
    return tuple(out)


class ColoringSearch:
    """One (R, Σ, k) coloring problem with a given strategy."""

    def __init__(
        self,
        relation: Relation,
        constraints: ConstraintSet,
        k: int,
        strategy: SelectionStrategy | str = "maxfanout",
        max_candidates: int = 64,
        max_steps: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        graph: Optional[ConstraintGraph] = None,
    ):
        if k < 1:
            raise ValueError("k must be at least 1")
        self.relation = relation
        self.constraints = constraints
        self.k = k
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.strategy = (
            strategy
            if isinstance(strategy, SelectionStrategy)
            else make_strategy(strategy, self.rng)
        )
        self.graph = graph if graph is not None else build_graph(relation, constraints)
        self.max_steps = max_steps
        self.stats = SearchStats()
        self._candidates: dict[int, list[Clustering]] = {}
        with obs.span(obs.SPAN_ENUMERATE_CANDIDATES):
            for node in self.graph:
                self._candidates[node.index] = enumerate_clusterings(
                    relation,
                    node.constraint,
                    k,
                    max_candidates=max_candidates,
                    rng=self.rng,
                    target_tids=set(node.target_tids),
                )
        # Backend captured at construction: the vectorized path shares the
        # relation's columnar index (and its cluster-contribution memo);
        # the reference path keeps projected QI row tuples.
        self._index = get_index(relation) if vectorized_enabled() else None
        if self._index is None:
            schema = relation.schema
            qi_positions = [schema.position(a) for a in schema.qi_names]
            self._qi_rows: Optional[dict[int, tuple]] = {
                tid: tuple(relation.row(tid)[p] for p in qi_positions)
                for node in self.graph
                for tid in node.target_tids
            }
        else:
            self._qi_rows = None
        # Precompute each distinct cluster's contribution per constraint
        # (extended lazily for dynamically generated clusters).  On the
        # vectorized backend the columnar search-state engine owns this:
        # it interns every distinct static cluster through the process-
        # global contribution memo with one memo-writing segment reduction
        # per QI constraint, instead of one preserved_count call per
        # (cluster, σ) pair, and keeps the live-assignment state as
        # delta-updated arrays.
        self._contrib: dict[frozenset, tuple[tuple[int, int], ...]] = {}
        self._engine: Optional[SearchState] = None
        if self._index is not None:
            self._engine = SearchState(
                self._index, self.graph, k, self._candidates
            )
        else:
            distinct: list[frozenset] = []
            for candidates in self._candidates.values():
                for clustering in candidates:
                    for cluster in clustering:
                        if cluster not in self._contrib:
                            self._contrib[cluster] = ()
                            distinct.append(cluster)
            for cluster in distinct:
                self._contrib[cluster] = self._cluster_contributions(cluster)
        # Live assignment state (dicts on the reference backend; the engine
        # keeps columnar twins and materializes the dict forms on attribute
        # access — see ``__getattr__``).
        self._live_assignment: dict[int, Clustering] = {}
        if self._engine is None:
            self._cluster_refs: dict[frozenset, int] = {}
            self._covered: dict[int, int] = {}
            self._counts: dict[int, int] = {n.index: 0 for n in self.graph}
            self._uppers: dict[int, int] = {
                n.index: n.constraint.upper for n in self.graph
            }

    def __getattr__(self, name: str):
        # On the vectorized backend the engine's arrays are authoritative;
        # the dict-shaped live state the reference backend stores directly
        # is materialized on demand (tests and debugging tools read it —
        # never the hot path).
        engine = self.__dict__.get("_engine")
        if engine is not None:
            if name == "_counts":
                return engine.counts_view()
            if name == "_uppers":
                return engine.uppers_view()
            if name == "_cluster_refs":
                return engine.cluster_refs_view()
            if name == "_covered":
                return engine.covered_view()
        raise AttributeError(
            f"{type(self).__name__} object has no attribute {name!r}"
        )

    def _cluster_contributions(self, cluster: frozenset) -> tuple[tuple[int, int], ...]:
        """(node index, surviving-count delta) pairs for one cluster.

        Constraints over only non-QI attributes are excluded: their counts
        are fixed globally by the relation (suppression cannot change them),
        so they neither need clusters nor constrain the search — their
        feasibility is a precheck in :class:`~repro.core.problem.KSigmaProblem`.
        """
        qi = set(self.relation.schema.qi_names)
        contribs = []
        for node in self.graph:
            if not any(a in qi for a in node.constraint.attrs):
                continue
            if self._index is not None:
                delta = self._index.preserved_count(cluster, node.constraint)
            else:
                delta = preserved_count_reference(
                    self.relation, (cluster,), node.constraint
                )
            if delta:
                contribs.append((node.index, delta))
        return tuple(contribs)

    # -- consistency ---------------------------------------------------------

    def candidates(self, index: int) -> list[Clustering]:
        """The (capped) candidate clusterings of node ``index``."""
        return list(self._candidates[index])

    def is_consistent(
        self, candidate: Clustering, assignment: dict[int, Clustering]
    ) -> bool:
        """Reference (non-incremental) consistency check for an arbitrary
        assignment; the search itself uses the incremental ``_consistent``."""
        self.stats.consistency_checks += 1
        chosen = merged_clusters(assignment)
        if not clusters_consistent(candidate, chosen):
            return False
        qi = set(self.relation.schema.qi_names)
        union = merged_clusters(assignment, candidate)
        for node in self.graph:
            if not any(a in qi for a in node.constraint.attrs):
                continue  # count fixed globally; handled by the precheck
            count = preserved_count(self.relation, union, node.constraint)
            if count > node.constraint.upper:
                return False
        return True

    def _consistent(self, candidate: Clustering) -> bool:
        """Incremental consistency against the live assignment state."""
        self.stats.consistency_checks += 1
        if self._engine is not None:
            return self._engine.consistent(candidate)
        deltas: dict[int, int] = {}
        for cluster in candidate:
            if cluster in self._cluster_refs:
                continue  # identical cluster already chosen: nothing new
            for tid in cluster:
                if tid in self._covered:
                    return False  # partial overlap with a chosen cluster
            for j, delta in self._contributions(cluster):
                deltas[j] = deltas.get(j, 0) + delta
        for j, delta in deltas.items():
            if self._counts[j] + delta > self._uppers[j]:
                return False
        return True

    def _contributions(self, cluster: frozenset) -> tuple[tuple[int, int], ...]:
        """Cached per-constraint contributions, computed lazily for dynamic
        clusters that were not in the static candidate pools."""
        if self._engine is not None:
            return self._engine.contributions(cluster)
        cached = self._contrib.get(cluster)
        if cached is None:
            cached = self._cluster_contributions(cluster)
            self._contrib[cluster] = cached
        return cached

    def consistent_count(self, index: int) -> int:
        """How many of node ``index``'s candidates remain consistent with
        the live assignment (used by the MinChoice strategy).

        Always evaluated against the incremental live-assignment state —
        the former ``assignment`` parameter was silently ignored, so it was
        dropped; the strategy callback contract is ``consistent_count(i)``
        (see :mod:`repro.core.strategies`).

        On the engine path each candidate is a window check against the
        live admission-counter arrays — the cluster delta arrays were
        interned once, so nothing is re-derived per call.
        """
        candidates = self._candidates[index]
        if self._engine is not None:
            self.stats.consistency_checks += len(candidates)
            return self._engine.consistent_count(candidates)
        return sum(1 for c in candidates if self._consistent(c))

    def _apply(self, candidate: Clustering) -> None:
        if self._engine is not None:
            self._engine.apply(candidate)
            return
        for cluster in candidate:
            refs = self._cluster_refs.get(cluster, 0)
            self._cluster_refs[cluster] = refs + 1
            if refs == 0:
                for tid in cluster:
                    self._covered[tid] = self._covered.get(tid, 0) + 1
                for j, delta in self._contributions(cluster):
                    self._counts[j] += delta

    def _revert(self, candidate: Clustering) -> None:
        if self._engine is not None:
            self._engine.revert(candidate)
            return
        for cluster in candidate:
            refs = self._cluster_refs[cluster] - 1
            if refs == 0:
                del self._cluster_refs[cluster]
                for tid in cluster:
                    if self._covered[tid] == 1:
                        del self._covered[tid]
                    else:
                        self._covered[tid] -= 1
                for j, delta in self._contributions(cluster):
                    self._counts[j] -= delta
            else:
                self._cluster_refs[cluster] = refs

    # -- search --------------------------------------------------------------

    def run(self) -> ColoringResult:
        """Execute the full backtracking search (Algorithm 4).

        Raises :class:`SearchBudgetExceeded` if ``max_steps`` candidate
        evaluations are exhausted first.  Search-effort counters are
        emitted to the observability layer when the search finishes —
        including on budget exhaustion, so partial effort is recorded.
        """
        with obs.span(obs.SPAN_COLORING_SEARCH):
            try:
                assignment: dict[int, Clustering] = {}
                # Exposed so _charge_step can snapshot the live partial
                # assignment into SearchBudgetExceeded.partial.
                self._live_assignment = assignment
                all_indices = [node.index for node in self.graph]
                success = self._color(assignment, set(all_indices))
            finally:
                self._emit_effort()
            if not success:
                return ColoringResult(False, stats=self.stats)
            merged = normalize_clustering(merged_clusters(assignment))
            satisfied = tuple(
                self.graph.node(i).constraint for i in sorted(assignment)
            )
            return ColoringResult(
                True,
                assignment=dict(assignment),
                clustering=merged,
                satisfied=satisfied,
                stats=self.stats,
            )

    def _emit_effort(self) -> None:
        """Flush cumulative SearchStats as observability counters.

        Aggregate emission at search end keeps the backtracking inner loop
        free of per-event sink traffic; repeated ``run()`` calls on one
        search instance would re-emit the running totals, so call once.
        """
        if obs.enabled():
            stats = self.stats
            counters = {
                obs.COLORING_NODES_EXPANDED: stats.nodes_expanded,
                obs.COLORING_CANDIDATES_TRIED: stats.candidates_tried,
                obs.COLORING_BACKTRACKS: stats.backtracks,
                obs.COLORING_CONSISTENCY_CHECKS: stats.consistency_checks,
                obs.COLORING_PRUNES: stats.prunes,
            }
            if self._engine is not None:
                # Engine effort is deterministic for a given search
                # trajectory (``batch_scored`` counts clusters *resolved*
                # through the batched path, whether the memo or the kernel
                # supplied the record), so pooled executors replaying
                # worker snapshots stay byte-identical to sequential runs.
                counters[obs.SEARCH_DELTA_APPLIES] = self._engine.delta_applies
                counters[obs.SEARCH_DELTA_REVERTS] = self._engine.delta_reverts
                counters[obs.SEARCH_BATCH_SCORED] = self._engine.batch_scored
            obs.incr_many(counters)

    def _color(self, assignment: dict[int, Clustering], uncolored: set[int]) -> bool:
        if not uncolored:
            return True
        self.stats.nodes_expanded += 1
        node_index = self.strategy.next_node(
            sorted(uncolored),
            self.graph,
            frozenset(assignment),
            self.consistent_count,
        )
        candidates = self.strategy.order_clusterings(self._candidates[node_index])
        # Dynamic residual-pool candidates first: they are adapted to the
        # live assignment (shortfall-sized, collision-free), so they both
        # suppress less and backtrack less than the static pool.
        for candidate in self._dynamic_candidates(node_index) + candidates:
            self._charge_step()
            self.stats.candidates_tried += 1
            if not self._consistent(candidate):
                self.stats.prunes += 1
                continue
            assignment[node_index] = candidate
            uncolored.discard(node_index)
            self._apply(candidate)
            if self._color(assignment, uncolored):
                return True
            self._revert(candidate)
            del assignment[node_index]
            uncolored.add(node_index)
            self.stats.backtracks += 1
        return False

    def _dynamic_candidates(self, index: int) -> list[Clustering]:
        """Residual-pool clusterings adapted to the live assignment.

        Static candidates always carry the full λl, but once neighbours are
        colored (a) part of σ's target pool is covered by foreign clusters
        and (b) shared clusters may already contribute to σ's count.  These
        candidates draw only from the *uncovered* target tuples and only for
        the *remaining* shortfall — the "update the candidate clusterings"
        refinement that lets nested/overlapping constraints coordinate
        instead of colliding.
        """
        if self._engine is not None:
            return self._engine.dynamic_candidates(index)
        node = self.graph.node(index)
        sigma = node.constraint
        qi = set(self.relation.schema.qi_names)
        if not any(a in qi for a in sigma.attrs):
            return []  # globally determined; the static [()] suffices
        have = self._counts[index]
        need = max(0, sigma.lower - have)
        if need == 0:
            # Lower bound already met by shared clusters: color with the
            # empty clustering (upper bounds were enforced as they grew).
            return [()]
        pool = sorted(t for t in node.target_tids if t not in self._covered)
        size = max(self.k, need)
        if size > len(pool) or have + size > sigma.upper:
            return []
        out: list[Clustering] = []
        # A few similarity-seeded subsets of the residual pool.
        seeds = pool[:: max(1, len(pool) // 3)][:3]
        seen: set[tuple] = set()
        for seed in seeds:
            if self._index is not None:
                ordered = self._index.rank_by_hamming(seed, pool)
            else:
                seed_row = self._qi_rows[seed]
                ordered = sorted(
                    pool,
                    key=lambda t: (qi_hamming_rows(seed_row, self._qi_rows[t]), t),
                )
            subset = tuple(ordered[:size])
            clustering = normalize_clustering(
                greedy_k_partition(subset, self.k, self._qi_rows, index=self._index)
            )
            key = tuple(tuple(sorted(c)) for c in clustering)
            if key not in seen:
                seen.add(key)
                out.append(clustering)
        return out

    def _charge_step(self) -> None:
        if self.max_steps is not None and self.stats.candidates_tried >= self.max_steps:
            raise SearchBudgetExceeded(
                f"coloring exceeded {self.max_steps} candidate evaluations",
                partial={
                    "stats": self.stats,
                    "assignment": dict(self._live_assignment),
                },
            )


#: The valid values of the ``solver=`` axis (see DESIGN.md "Solver tiers").
SOLVER_TIERS = ("exact", "approx", "auto")


def diverse_clustering(
    relation: Relation,
    constraints: ConstraintSet,
    k: int,
    strategy: SelectionStrategy | str = "maxfanout",
    max_candidates: int = 64,
    max_steps: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    solver: str = "exact",
) -> ColoringResult:
    """``DiverseClustering(R, Σ, k)`` (Algorithm 3).

    Returns a :class:`ColoringResult`; ``result.success`` is False when no
    diverse clustering exists (DIVA then reports "relation does not exist").

    ``solver`` picks the tier: ``exact`` is the backtracking search above,
    ``approx`` the poly-time greedy tier (:mod:`repro.core.approx`), and
    ``auto`` runs exact first and escalates to approx — warm-started from
    the exact search's partial assignment — only when the step budget is
    exhausted, so ``auto`` is byte-identical to ``exact`` whenever exact
    finishes within budget.  If the approx tier fails too, the original
    :class:`SearchBudgetExceeded` is re-raised so callers' buffering /
    best-effort semantics are unchanged.
    """
    if solver not in SOLVER_TIERS:
        raise ValueError(f"solver must be one of {SOLVER_TIERS}, got {solver!r}")
    if solver == "approx":
        from .approx import approx_clustering  # local: avoids circular import

        return approx_clustering(relation, constraints, k, rng=rng)
    search = ColoringSearch(
        relation,
        constraints,
        k,
        strategy=strategy,
        max_candidates=max_candidates,
        max_steps=max_steps,
        rng=rng,
    )
    try:
        return search.run()
    except SearchBudgetExceeded as exc:
        if solver != "auto":
            raise
        from .approx import escalate_from_budget  # local: avoids circular import

        result = escalate_from_budget(
            relation, constraints, k, graph=search.graph, exc=exc
        )
        if result is None:
            raise
        return result

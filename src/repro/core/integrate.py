"""The Integrate phase of DIVA (Algorithm 1, last step).

``R' = RΣ ∪ Rk`` always meets every constraint's *lower* bound (RΣ was built
to preserve it, and union only adds occurrences) and is k-anonymous (both
parts are).  What Rk can break is an *upper* bound: the off-the-shelf
anonymizer knows nothing about Σ and may leave extra target occurrences
visible.  Integrate repairs this by suppressing the offending attribute for
whole QI-groups of Rk — whole groups so k-anonymity is untouched, from Rk
only so RΣ's lower-bound guarantees survive — greedily choosing the groups
that remove the most overage per starred cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..data.relation import Relation
from .constraints import ConstraintSet, DiversityConstraint


@dataclass
class IntegrationReport:
    """What Integrate had to do.

    ``repairs`` lists ``(constraint, n_groups_suppressed, cells_starred)``
    per violated constraint; ``cells_starred`` totals the information-loss
    cost of integration.
    """

    repairs: list[tuple[DiversityConstraint, int, int]] = field(default_factory=list)

    @property
    def cells_starred(self) -> int:
        return sum(cells for _, _, cells in self.repairs)

    @property
    def touched_constraints(self) -> list[DiversityConstraint]:
        return [c for c, _, _ in self.repairs]


def integrate(
    r_sigma: Relation,
    r_k: Relation,
    constraints: ConstraintSet,
) -> tuple[Relation, IntegrationReport]:
    """Union the two parts and repair upper-bound violations caused by Rk.

    Returns the final relation and a report of the repairs performed.
    Both inputs must share a schema and have disjoint tids (they partition
    the original tuples).
    """
    combined = r_sigma.union(r_k)
    report = IntegrationReport()
    protected = set(r_sigma.tids)
    for sigma in constraints:
        count = sigma.count(combined)
        if count <= sigma.upper:
            continue
        overage = count - sigma.upper
        combined, groups, cells = _repair_upper_bound(
            combined, sigma, overage, protected
        )
        report.repairs.append((sigma, groups, cells))
    return combined, report


def _repair_upper_bound(
    relation: Relation,
    sigma: DiversityConstraint,
    overage: int,
    protected: set[int],
) -> tuple[Relation, int, int]:
    """Star σ's attributes for Rk QI-groups until the overage is gone.

    Only groups fully outside ``protected`` (the RΣ tuples) are candidates,
    and only σ's *QI* attributes can be starred (sensitive values are never
    suppressed; starring any one attribute of the target combination breaks
    the match).  Groups are taken in descending contribution order: each
    suppression removes ``contribution`` occurrences at a cost of
    ``|group| × |QI attrs of σ|`` stars, so big contributors first is the
    greedy minimal-star choice.  Sufficient in the DIVA pipeline: Rk's total
    contribution is at least the overage because RΣ alone satisfies
    ``count ≤ λr`` (the coloring's consistency condition), and any σ with a
    positive count has at least one suppressible QI attribute (all-non-QI
    constraints are filtered by the feasibility precheck).
    """
    qi = set(relation.schema.qi_names)
    star_attrs = [a for a in sigma.attrs if a in qi]
    if not star_attrs:
        return relation, 0, 0  # nothing suppressible; precheck guards this
    groups = relation.qi_groups()
    matching = sigma.target_tids(relation)
    candidates = []
    for key, tids in groups.items():
        if tids & protected:
            continue
        contribution = len(tids & matching)
        if contribution > 0:
            candidates.append((contribution, sorted(tids)))
    candidates.sort(key=lambda item: (-item[0], item[1]))

    suppressed_groups = 0
    cells = 0
    to_star: list[tuple[int, str]] = []
    remaining = overage
    for contribution, tids in candidates:
        if remaining <= 0:
            break
        for tid in tids:
            for attr in star_attrs:
                to_star.append((tid, attr))
        cells += len(tids) * len(star_attrs)
        suppressed_groups += 1
        remaining -= contribution
    repaired = relation.suppress_values(to_star)
    return repaired, suppressed_groups, cells

"""Local-search refinement of clusterings for suppression minimality.

The (k, Σ)-anonymization objective asks for a *minimum* number of ★s
(Definition 2.4, condition 4).  DIVA's phases are greedy; this module adds a
post-pass that polishes a clustering by relocating single tuples between
clusters whenever the move strictly reduces the total suppression cost,
while every cluster keeps at least k members.  Moves never split or merge
clusters, so the QI-group structure (and hence k-anonymity) is preserved.

``refine_result`` applies the polish to a DIVA result: only the
Anonymize-phase clusters (Rk) are touched — the diversity clusters of RΣ
encode Σ's lower bounds and stay frozen — and the Integrate repair is re-run
afterwards, since restoring suppressed values can re-expose an upper bound.

This is the standard first-improvement hill climbing used by local-recoding
anonymizers; it terminates because the total cost strictly decreases.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Optional

from ..data.relation import Relation


def _cluster_cost(qi_rows: dict[int, tuple], cluster: set[int]) -> int:
    """Stars incurred by suppressing ``cluster`` (varying attrs × size)."""
    if not cluster:
        return 0
    rows = [qi_rows[tid] for tid in cluster]
    varying = sum(1 for column in zip(*rows) if len(set(column)) > 1)
    return varying * len(rows)


def refine_clusters(
    relation: Relation,
    clusters: Iterable[Iterable[int]],
    k: int,
    max_rounds: Optional[int] = 10,
) -> tuple[list[set[int]], int]:
    """Hill-climb single-tuple moves between clusters to shed stars.

    Returns the refined clusters and the number of stars saved.  Donors
    must stay at size ≥ k, so clusters at exactly k never give up tuples.
    ``max_rounds`` bounds full passes (each is O(n × #clusters) cost
    evaluations); passes stop early at a local optimum.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    working = [set(c) for c in clusters]
    for cluster in working:
        if len(cluster) < k:
            raise ValueError(f"cluster of size {len(cluster)} violates k={k}")
    schema = relation.schema
    qi_positions = [schema.position(a) for a in schema.qi_names]
    qi_rows = {
        tid: tuple(relation.row(tid)[p] for p in qi_positions)
        for cluster in working
        for tid in cluster
    }
    costs = [_cluster_cost(qi_rows, c) for c in working]
    saved = 0
    rounds = 0
    improved = True
    while improved and (max_rounds is None or rounds < max_rounds):
        rounds += 1
        improved = False
        for donor_index, donor in enumerate(working):
            if len(donor) <= k:
                continue
            for tid in list(donor):
                donor_without = donor - {tid}
                donor_new_cost = _cluster_cost(qi_rows, donor_without)
                base_delta = donor_new_cost - costs[donor_index]
                best = None  # (total_delta, target_index, target_new_cost)
                for target_index, target in enumerate(working):
                    if target_index == donor_index:
                        continue
                    target_new_cost = _cluster_cost(qi_rows, target | {tid})
                    delta = base_delta + (target_new_cost - costs[target_index])
                    if delta < 0 and (best is None or delta < best[0]):
                        best = (delta, target_index, target_new_cost)
                if best is not None:
                    delta, target_index, target_new_cost = best
                    donor.discard(tid)
                    working[target_index].add(tid)
                    costs[donor_index] = donor_new_cost
                    costs[target_index] = target_new_cost
                    saved -= delta
                    improved = True
                    if len(donor) <= k:
                        break
    return working, saved


def refine_result(result, relation: Relation, k: int) -> tuple[Relation, int]:
    """Polish a :class:`~repro.core.diva.DivaResult` and return the new R′.

    Rebuilds Rk's clusters from the original tuples, hill-climbs them (RΣ
    stays frozen), re-suppresses, and re-runs Integrate against the
    satisfied constraints — restoring previously starred values can push a
    count back above its λr, and the repair keeps the output sound.
    Returns the refined relation and the net stars saved (which can be
    smaller than the raw hill-climbing gain if Integrate had to re-repair,
    but never negative: the original relation is kept when no net gain
    remains).
    """
    from .constraints import ConstraintSet
    from .integrate import integrate
    from .suppress import suppress

    if result.r_k is None or len(result.r_k) == 0:
        return result.relation, 0
    rk_groups = [set(tids) for tids in result.r_k.qi_groups().values()]
    refined, raw_saved = refine_clusters(relation, rk_groups, k)
    if raw_saved == 0:
        return result.relation, 0
    new_rk = suppress(relation.restrict(result.r_k.tids), refined)
    final, _report = integrate(
        result.r_sigma, new_rk, ConstraintSet(result.satisfied)
    )
    net_saved = result.relation.star_count() - final.star_count()
    if net_saved <= 0:
        return result.relation, 0
    return final, net_saved

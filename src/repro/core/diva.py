"""DIVA — DIVerse and Anonymized publishing (paper Algorithm 1).

The top-level pipeline:

1. **DiverseClustering** — backtracking graph coloring finds a clustering
   SΣ of (a subset of) the tuples that satisfies every σ ∈ Σ.
2. **Suppress** — SΣ becomes the k-anonymous, Σ-satisfying relation RΣ.
3. **Anonymize** — the remaining tuples ``R \\ SΣ`` go through an
   off-the-shelf k-anonymizer (k-member by default, as in the paper's
   evaluation) to produce Rk.
4. **Integrate** — ``RΣ ∪ Rk`` is checked against Σ's upper bounds; Rk-side
   violations are repaired by whole-group suppression.

``DivaResult`` carries the published relation together with phase timings,
search statistics and the repair report, which is everything the benchmark
harness needs to regenerate the paper's figures.

Failure semantics: in *strict* mode an unsatisfiable Σ raises
:class:`UnsatisfiableError` (the paper's "relation does not exist").  In
*best-effort* mode DIVA instead drops the fewest, most-restrictive
constraints needed to make coloring succeed and reports them in
``result.dropped`` — the high-conflict sweeps of Figure 4c use this so a
single infeasible Σ doesn't abort a whole experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Union

import numpy as np

from .. import obs
from ..data.relation import Relation

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from ..anonymize import Anonymizer
from .coloring import (
    SOLVER_TIERS,
    ColoringSearch,
    SearchBudgetExceeded,
    SearchStats,
)
from .constraints import ConstraintSet, DiversityConstraint
from .enumeration import get_enum_memo
from .searchstate import get_contribution_memo
from .errors import UnsatisfiableError
from .index import get_index, vectorized_enabled
from .integrate import IntegrationReport, integrate
from .problem import KSigmaProblem
from .strategies import SelectionStrategy, make_strategy
from .suppress import covered_tids, suppress


@dataclass
class DivaResult:
    """Everything DIVA produced for one (R, Σ, k) instance."""

    relation: Relation
    clustering: tuple = ()
    r_sigma: Optional[Relation] = None
    r_k: Optional[Relation] = None
    satisfied: tuple[DiversityConstraint, ...] = ()
    dropped: tuple[DiversityConstraint, ...] = ()
    stats: SearchStats = field(default_factory=SearchStats)
    integration: IntegrationReport = field(default_factory=IntegrationReport)
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        return sum(self.timings.values())

    @property
    def fully_diverse(self) -> bool:
        """True when no constraint had to be dropped."""
        return not self.dropped

    def summary(self) -> str:
        """Human-readable one-screen report of the run."""
        lines = [
            f"DIVA result: {len(self.relation)} tuples published",
            f"  diverse clustering: {len(self.clustering)} cluster(s) over "
            f"{sum(len(c) for c in self.clustering)} tuple(s)",
            f"  constraints: {len(self.satisfied)} satisfied, "
            f"{len(self.dropped)} dropped",
        ]
        if self.dropped:
            for sigma in self.dropped:
                lines.append(f"    dropped {sigma!r}")
        lines.append(
            f"  suppression: {self.relation.star_count()} starred cell(s)"
        )
        if self.integration.repairs:
            lines.append(
                f"  integrate repairs: {len(self.integration.repairs)} "
                f"constraint(s), {self.integration.cells_starred} cell(s)"
            )
        lines.append(
            "  search: "
            f"{self.stats.candidates_tried} candidates tried, "
            f"{self.stats.backtracks} backtracks"
        )
        lines.append(
            "  time: "
            + ", ".join(f"{k} {v:.3f}s" for k, v in self.timings.items())
        )
        return "\n".join(lines)


class Diva:
    """Configured DIVA solver.

    Parameters
    ----------
    strategy:
        Node/clustering selection: ``"basic"``, ``"minchoice"`` or
        ``"maxfanout"`` (or a :class:`SelectionStrategy` instance).
    anonymizer:
        Off-the-shelf k-anonymizer for the Anonymize phase; name
        (``"k-member"``, ``"oka"``, ``"mondrian"``) or instance.
    best_effort:
        Drop unsatisfiable constraints instead of raising.
    max_candidates:
        Cap on clusterings enumerated per constraint (the paper's
        polynomiality knob).
    max_steps:
        Budget on candidate evaluations in the coloring search (default
        100k; pass None for an unbounded, exact search).  Exceeding it
        raises (strict) or triggers constraint dropping (best-effort).
    refine:
        Run the suppression-minimality polish (``core.refine``) on the
        Anonymize-phase clusters after Integrate.
    seed:
        Seeds every random choice (strategies, anonymizers, sampling).
    max_workers:
        When set, DiverseClustering runs per connected component under the
        cost-ordered scheduler of :mod:`repro.core.parallel` with a pool of
        this size.  ``None`` (default) keeps the monolithic sequential
        search.
    executor:
        Pool flavor for ``max_workers``: ``"thread"`` (default) or
        ``"process"`` (ships the relation via shared memory; requires a
        strategy *name*, not an instance).
    solver:
        Solver tier for DiverseClustering: ``"exact"`` (default, the
        backtracking coloring search), ``"approx"`` (the poly-time greedy
        tier of :mod:`repro.core.approx`), or ``"auto"`` (exact under the
        step budget, escalating to a warm-started approx pass only on
        :class:`SearchBudgetExceeded` — byte-identical to ``"exact"``
        whenever the budget suffices).
    """

    def __init__(
        self,
        strategy: Union[str, SelectionStrategy] = "maxfanout",
        anonymizer: Union[str, Anonymizer] = "k-member",
        best_effort: bool = False,
        max_candidates: int = 64,
        max_steps: Optional[int] = 100_000,
        refine: bool = False,
        seed: int = 0,
        max_workers: Optional[int] = None,
        executor: str = "thread",
        solver: str = "exact",
    ):
        if executor not in ("thread", "process"):
            raise ValueError("executor must be 'thread' or 'process'")
        if solver not in SOLVER_TIERS:
            raise ValueError(
                f"solver must be one of {SOLVER_TIERS}, got {solver!r}"
            )
        self.solver = solver
        self._strategy_spec = strategy
        self._anonymizer_spec = anonymizer
        self.best_effort = best_effort
        self.max_candidates = max_candidates
        self.max_steps = max_steps
        self.refine = refine
        self.seed = seed
        self.max_workers = max_workers
        self.executor = executor

    def _fresh_rng(self) -> np.random.Generator:
        return np.random.default_rng(self.seed)

    def _fresh_strategy(self, rng: np.random.Generator) -> SelectionStrategy:
        if isinstance(self._strategy_spec, SelectionStrategy):
            return self._strategy_spec
        return make_strategy(self._strategy_spec, rng)

    def _fresh_anonymizer(self, rng: np.random.Generator) -> "Anonymizer":
        from ..anonymize import Anonymizer, make_anonymizer

        if isinstance(self._anonymizer_spec, Anonymizer):
            return self._anonymizer_spec
        return make_anonymizer(self._anonymizer_spec, rng)

    # -- main entry point ------------------------------------------------------

    def run(
        self, relation: Relation, constraints: ConstraintSet, k: int
    ) -> DivaResult:
        """Solve one (k, Σ)-anonymization instance (Algorithm 1).

        Each phase runs inside an observability span (the span durations
        are also the ``result.timings`` entries), and run-level counters —
        suppressed cells, dropped constraints, kernel cluster-cache deltas
        — are emitted when a sink is installed; with the default null sink
        the instrumentation is inert and behavior-neutral.
        """
        with obs.span(obs.SPAN_DIVA_RUN):
            return self._run_instrumented(relation, constraints, k)

    def _run_instrumented(
        self, relation: Relation, constraints: ConstraintSet, k: int
    ) -> DivaResult:
        problem = KSigmaProblem(relation, constraints, k)
        rng = self._fresh_rng()

        # Kernel cluster-cache and enumeration-memo counters are cumulative
        # (the index and the process-global memo outlive any single run),
        # so report this run's contribution as deltas.
        cache_before = None
        enum_before = None
        search_before = None
        if obs.enabled() and vectorized_enabled():
            cache_before = dict(get_index(relation).cache_stats())
            enum_before = dict(get_enum_memo().stats())
            search_before = dict(get_contribution_memo().stats())

        active = constraints
        dropped: list[DiversityConstraint] = []
        infeasible = problem.infeasible_constraints()
        if infeasible:
            if not self.best_effort:
                raise UnsatisfiableError(
                    "infeasible constraints: "
                    + "; ".join(f"{p.constraint!r} ({p.reason})" for p in infeasible),
                    unsatisfied=[p.constraint for p in infeasible],
                )
            bad = {p.constraint for p in infeasible}
            dropped.extend(c for c in active if c in bad)
            active = ConstraintSet(c for c in active if c not in bad)

        timings: dict[str, float] = {}

        # Phase 1: DiverseClustering (with best-effort constraint dropping).
        with obs.span(obs.SPAN_DIVERSE_CLUSTERING) as sp:
            coloring, active, newly_dropped = self._diverse_clustering(
                relation, active, k, rng
            )
        dropped.extend(newly_dropped)
        timings["diverse_clustering"] = sp.duration
        if coloring is None:
            raise UnsatisfiableError(
                "no diverse clustering exists: relation does not exist",
                unsatisfied=list(constraints),
            )

        # Phase 2: Suppress SΣ into RΣ.
        with obs.span(obs.SPAN_SUPPRESS) as sp:
            r_sigma = suppress(relation, coloring.clustering)
        timings["suppress"] = sp.duration

        # Phase 3: Anonymize the remaining tuples.
        with obs.span(obs.SPAN_ANONYMIZE) as sp:
            rest = relation.without(covered_tids(coloring.clustering))
            if len(rest) == 0:
                r_k = rest
            elif len(rest) < k:
                # Fewer than k leftovers cannot form their own QI-group; fold
                # them into the SΣ cluster where they do the least damage.
                r_sigma = self._absorb_small_remainder(
                    relation, coloring.clustering, rest, active
                )
                r_k = rest.without(rest.tids)
            else:
                anonymizer = self._fresh_anonymizer(rng)
                r_k = anonymizer.anonymize(rest, k)
        timings["anonymize"] = sp.duration

        # Phase 4: Integrate and repair upper bounds.
        with obs.span(obs.SPAN_INTEGRATE) as sp:
            final, report = integrate(r_sigma, r_k, active)
        timings["integrate"] = sp.duration

        if self.refine:
            from .refine import refine_result

            with obs.span(obs.SPAN_REFINE) as sp:
                draft = DivaResult(
                    relation=final,
                    r_sigma=r_sigma,
                    r_k=r_k,
                    satisfied=tuple(active),
                )
                final, _saved = refine_result(draft, relation, k)
            timings["refine"] = sp.duration

        if obs.enabled():
            run_counters = {
                obs.SUPPRESS_CELLS_STARRED: final.star_count(),
                obs.DIVA_CONSTRAINTS_DROPPED: len(dropped),
            }
            if cache_before is not None:
                cache_after = get_index(relation).cache_stats()
                run_counters[obs.INDEX_CLUSTER_CACHE_HITS] = (
                    cache_after["cluster_cache_hits"]
                    - cache_before["cluster_cache_hits"]
                )
                run_counters[obs.INDEX_CLUSTER_CACHE_MISSES] = (
                    cache_after["cluster_cache_misses"]
                    - cache_before["cluster_cache_misses"]
                )
            if enum_before is not None:
                enum_after = get_enum_memo().stats()
                run_counters[obs.ENUM_MEMO_HITS] = (
                    enum_after["enum_memo_hits"] - enum_before["enum_memo_hits"]
                )
                run_counters[obs.ENUM_MEMO_MISSES] = (
                    enum_after["enum_memo_misses"]
                    - enum_before["enum_memo_misses"]
                )
            if search_before is not None:
                search_after = get_contribution_memo().stats()
                run_counters[obs.SEARCH_MEMO_HITS] = (
                    search_after["search_memo_hits"]
                    - search_before["search_memo_hits"]
                )
                run_counters[obs.SEARCH_MEMO_MISSES] = (
                    search_after["search_memo_misses"]
                    - search_before["search_memo_misses"]
                )
            obs.incr_many(run_counters)

        return DivaResult(
            relation=final,
            clustering=coloring.clustering,
            r_sigma=r_sigma,
            r_k=r_k,
            satisfied=tuple(active),
            dropped=tuple(dropped),
            stats=coloring.stats,
            integration=report,
            timings=timings,
        )

    # -- internals -------------------------------------------------------------

    def _diverse_clustering(self, relation, constraints, k, rng):
        """Run the coloring search, dropping constraints in best-effort mode.

        Returns ``(result_or_None, surviving_constraints, dropped)``.

        With ``max_workers`` configured, the first (full-Σ) attempt runs
        per connected component on the parallel scheduler.  Best-effort
        constraint dropping needs the monolithic search's per-node
        candidate counts to pick a victim, so on a failed parallel attempt
        the drop loop below takes over sequentially — the parallel run
        already established *that* Σ is infeasible; the loop decides
        *what* to shed.
        """
        if self.max_workers is not None and self.max_workers > 1:
            result = self._parallel_attempt(relation, constraints, k, rng)
            if result is not None and result.success:
                return result, constraints, []
            if not self.best_effort:
                return None, constraints, []
        dropped: list[DiversityConstraint] = []
        active = constraints
        budget = self.max_steps
        while True:
            search = None
            if self.solver == "approx":
                from .approx import approx_clustering

                result = approx_clustering(relation, active, k, rng=rng)
            else:
                search = ColoringSearch(
                    relation,
                    active,
                    k,
                    strategy=self._fresh_strategy(rng),
                    max_candidates=self.max_candidates,
                    max_steps=budget,
                    rng=rng,
                )
                try:
                    result = search.run()
                except SearchBudgetExceeded as exc:
                    result = None
                    if self.solver == "auto":
                        from .approx import escalate_from_budget

                        result = escalate_from_budget(
                            relation, active, k, graph=search.graph, exc=exc
                        )
                    if result is None and not self.best_effort:
                        raise
            if result is not None and result.success:
                return result, active, dropped
            if not self.best_effort:
                return None, active, dropped
            if len(active) == 0:
                # Nothing left to drop: succeed with the empty clustering.
                from .coloring import ColoringResult

                return ColoringResult(True, clustering=()), active, dropped
            # Drop the most restrictive constraint and retry — the cheapest
            # way to restore satisfiability.  With an exact search in hand,
            # restrictiveness is its candidate count; the approx tier has no
            # candidate pools, so the smallest target pool is the proxy.
            # The step budget halves per retry so repeated failed searches
            # stay bounded (total work ≤ 2 × max_steps) even for large Σ.
            victim = self._pick_victim(search, relation, active)
            dropped.append(victim)
            active = ConstraintSet(c for c in active if c != victim)
            if budget is not None:
                budget = max(budget // 2, 2_000)

    @staticmethod
    def _pick_victim(search, relation, active) -> DiversityConstraint:
        """The most restrictive constraint of ``active`` to shed next."""
        if search is not None:
            return min(
                (node for node in search.graph),
                key=lambda n: (len(search.candidates(n.index)), n.index),
            ).constraint
        from .graph import build_graph

        return min(
            (node for node in build_graph(relation, active)),
            key=lambda n: (len(n.target_tids), n.index),
        ).constraint

    def _parallel_attempt(self, relation, constraints, k, rng):
        """One component-parallel coloring pass; None means "try dropping".

        Components draw from ``SeedSequence(self.seed)`` spawns rather
        than the run's shared ``rng`` stream, so the outcome is a function
        of (R, Σ, k, seed) alone — independent of executor flavor, worker
        count and completion order.
        """
        from .parallel import component_coloring

        strategy = self._strategy_spec
        if not isinstance(strategy, str) and self.executor == "thread":
            strategy = self._fresh_strategy(rng)
        try:
            return component_coloring(
                relation,
                constraints,
                k,
                strategy=strategy,
                max_candidates=self.max_candidates,
                max_steps=self.max_steps,
                seed=self.seed,
                max_workers=self.max_workers,
                executor=self.executor,
                solver=self.solver,
            )
        except SearchBudgetExceeded:
            if not self.best_effort:
                raise
            return None

    @staticmethod
    def _absorb_small_remainder(relation, clustering, rest, constraints):
        """Re-suppress with the < k leftover tuples folded into clusters.

        Each leftover tuple is placed greedily into the host cluster that
        (first) keeps Σ satisfied and (second) adds the fewest stars —
        merging can star a target attribute and break a lower bound, so
        satisfaction is re-checked per candidate host.  Falls back to the
        cheapest violating merge when no host preserves Σ (the violation
        then surfaces through the problem validator / metrics, not
        silently).
        """
        clusters = [set(c) for c in clustering]
        for tid in sorted(rest.tids):
            best = None  # ((violates, stars), host_index)
            for host_index in range(len(clusters)):
                trial = [set(c) for c in clusters]
                trial[host_index].add(tid)
                merged = suppress(relation.restrict(
                    {t for c in trial for t in c}
                ), trial)
                violates = not constraints.is_satisfied_by(merged)
                key = (violates, merged.star_count())
                if best is None or key < best[0]:
                    best = (key, host_index)
            clusters[best[1]].add(tid)
        return suppress(relation, clusters)


def run_diva(
    relation: Relation,
    constraints: ConstraintSet,
    k: int,
    strategy: Union[str, SelectionStrategy] = "maxfanout",
    anonymizer: Union[str, Anonymizer] = "k-member",
    best_effort: bool = False,
    max_candidates: int = 64,
    max_steps: Optional[int] = 100_000,
    refine: bool = False,
    seed: int = 0,
    max_workers: Optional[int] = None,
    executor: str = "thread",
    solver: str = "exact",
) -> DivaResult:
    """One-call convenience wrapper around :class:`Diva`."""
    diva = Diva(
        strategy=strategy,
        anonymizer=anonymizer,
        best_effort=best_effort,
        max_candidates=max_candidates,
        max_steps=max_steps,
        refine=refine,
        seed=seed,
        max_workers=max_workers,
        executor=executor,
        solver=solver,
    )
    return diva.run(relation, constraints, k)

"""Diversity constraints over relations (paper Definition 2.3).

A diversity constraint ``σ = (X[t], λl, λr)`` requires that the published
relation contain at least ``λl`` and at most ``λr`` tuples whose attributes
``X`` carry exactly the target values ``t``.  Single-attribute constraints
``(A[a], λl, λr)`` are the common case; the multi-attribute extension is the
same object with ``|X| > 1``.

Satisfaction is counted over concrete values only: a suppressed cell is not
an occurrence of any value, which is what couples diversity with
suppression-based anonymization — suppressing a characteristic value can
*break* a lower bound, and keeping too many can break an upper bound.
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Iterator, Sequence
from typing import Any

from ..data.relation import Relation, Schema
from .errors import ConstraintFormatError

_PARSE_RE = re.compile(
    r"""^\s*
    (?P<attrs>[^\[\]]+)            # attribute name(s), comma separated
    \[(?P<values>[^\[\]]+)\]       # target value(s)
    \s*,\s*(?P<lo>\d+)
    \s*,\s*(?P<hi>\d+)
    \s*$""",
    re.VERBOSE,
)


class DiversityConstraint:
    """``σ = (X[t], λl, λr)``: bounds on the frequency of a target tuple.

    Parameters
    ----------
    attrs:
        The characteristic attribute(s) ``X`` — a name or sequence of names.
    values:
        The target value(s) ``t``, aligned with ``attrs``.
    lower, upper:
        The frequency range ``[λl, λr]`` (inclusive, non-negative,
        ``lower <= upper``).

    Examples
    --------
    >>> sigma = DiversityConstraint("ETH", "Asian", 2, 5)
    >>> sigma.attrs, sigma.values, sigma.lower, sigma.upper
    (('ETH',), ('Asian',), 2, 5)
    """

    __slots__ = ("_attrs", "_values", "_lower", "_upper")

    def __init__(
        self,
        attrs: str | Sequence[str],
        values: Any | Sequence[Any],
        lower: int,
        upper: int,
    ):
        if isinstance(attrs, str):
            attrs = (attrs,)
            values = (values,)
        else:
            attrs = tuple(attrs)
            values = tuple(values) if isinstance(values, (list, tuple)) else (values,)
        if not attrs:
            raise ConstraintFormatError("constraint needs at least one attribute")
        if len(attrs) != len(values):
            raise ConstraintFormatError(
                f"{len(attrs)} attributes but {len(values)} target values"
            )
        if len(set(attrs)) != len(attrs):
            raise ConstraintFormatError(f"repeated attribute in {attrs}")
        if not (isinstance(lower, int) and isinstance(upper, int)):
            raise ConstraintFormatError("bounds must be integers")
        if lower < 0 or upper < 0:
            raise ConstraintFormatError("bounds must be non-negative")
        if lower > upper:
            raise ConstraintFormatError(
                f"lower bound {lower} exceeds upper bound {upper}"
            )
        self._attrs = attrs
        self._values = values
        self._lower = lower
        self._upper = upper

    # -- accessors -----------------------------------------------------------

    @property
    def attrs(self) -> tuple[str, ...]:
        """The characteristic attributes ``X``."""
        return self._attrs

    @property
    def values(self) -> tuple[Any, ...]:
        """The target values ``t``."""
        return self._values

    @property
    def lower(self) -> int:
        """λl — minimum required occurrences."""
        return self._lower

    @property
    def upper(self) -> int:
        """λr — maximum allowed occurrences."""
        return self._upper

    @property
    def is_single_attribute(self) -> bool:
        return len(self._attrs) == 1

    # -- semantics -----------------------------------------------------------

    def count(self, relation: Relation) -> int:
        """Occurrences of the target values in ``relation`` (STARs excluded)."""
        return relation.count_matching(self._attrs, self._values)

    def target_tids(self, relation: Relation) -> set[int]:
        """``Iσ``: tids of tuples carrying the target values (Section 3.3)."""
        return relation.matching_tids(self._attrs, self._values)

    def is_satisfied_by(self, relation: Relation) -> bool:
        """``R |= σ`` per Definition 2.3."""
        return self._lower <= self.count(relation) <= self._upper

    def validate_against(self, schema: Schema) -> None:
        """Raise if the constraint references attributes absent from schema."""
        schema.validate_names(self._attrs)

    # -- protocol ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiversityConstraint):
            return NotImplemented
        return (
            self._attrs == other._attrs
            and self._values == other._values
            and self._lower == other._lower
            and self._upper == other._upper
        )

    def __hash__(self) -> int:
        return hash((self._attrs, self._values, self._lower, self._upper))

    def __repr__(self) -> str:
        target = ", ".join(
            f"{a}[{v}]" for a, v in zip(self._attrs, self._values)
        )
        return f"({target}, {self._lower}, {self._upper})"

    @classmethod
    def parse(cls, text: str) -> "DiversityConstraint":
        """Parse ``"ETH[Asian], 2, 5"`` or ``"GEN,ETH[Male,Asian], 1, 3"``.

        The textual form mirrors the paper's notation; multi-attribute
        constraints list attributes and values comma-separated in the same
        order.
        """
        match = _PARSE_RE.match(text)
        if match is None:
            raise ConstraintFormatError(
                f"cannot parse constraint {text!r}; expected 'A[a], lo, hi'"
            )
        attrs = tuple(a.strip() for a in match["attrs"].split(","))
        values = tuple(v.strip() for v in match["values"].split(","))
        if len(attrs) != len(values):
            raise ConstraintFormatError(
                f"{len(attrs)} attributes but {len(values)} values in {text!r}"
            )
        return cls(attrs, values, int(match["lo"]), int(match["hi"]))


class ConstraintSet:
    """An ordered set ``Σ`` of diversity constraints.

    Order is preserved (it is the node order of the constraint graph);
    duplicates are rejected.  ``R |= Σ`` iff every member is satisfied.
    """

    __slots__ = ("_constraints",)

    def __init__(self, constraints: Iterable[DiversityConstraint] = ()):
        items: list[DiversityConstraint] = []
        seen: set[DiversityConstraint] = set()
        for c in constraints:
            if not isinstance(c, DiversityConstraint):
                c = DiversityConstraint.parse(str(c))
            if c in seen:
                raise ConstraintFormatError(f"duplicate constraint {c!r}")
            seen.add(c)
            items.append(c)
        self._constraints = tuple(items)

    def __len__(self) -> int:
        return len(self._constraints)

    def __iter__(self) -> Iterator[DiversityConstraint]:
        return iter(self._constraints)

    def __getitem__(self, index: int) -> DiversityConstraint:
        return self._constraints[index]

    def __contains__(self, c: object) -> bool:
        return c in self._constraints

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConstraintSet):
            return NotImplemented
        return self._constraints == other._constraints

    def __repr__(self) -> str:
        inner = "; ".join(repr(c) for c in self._constraints)
        return f"Σ{{{inner}}}"

    def is_satisfied_by(self, relation: Relation) -> bool:
        """``R |= Σ``: every constraint satisfied."""
        return all(c.is_satisfied_by(relation) for c in self._constraints)

    def violations(self, relation: Relation) -> list[tuple[DiversityConstraint, int]]:
        """Constraints violated by ``relation``, with the observed counts."""
        result = []
        for c in self._constraints:
            n = c.count(relation)
            if not c.lower <= n <= c.upper:
                result.append((c, n))
        return result

    def validate_against(self, schema: Schema) -> None:
        """Raise if any constraint references an attribute absent from schema."""
        for c in self._constraints:
            c.validate_against(schema)

    def target_map(self, relation: Relation) -> dict[DiversityConstraint, set[int]]:
        """``Iσ`` for every constraint, computed once."""
        return {c: c.target_tids(relation) for c in self._constraints}

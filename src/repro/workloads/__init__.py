"""Experiment workloads: constraint generation and parameter sweeps."""

from .constraint_gen import (
    CONSTRAINT_CLASSES,
    average_constraints,
    conflicted_constraints,
    make_constraints,
    min_frequency_constraints,
    proportion_constraints,
)
from .sweeps import (
    N_TRIALS,
    PARAM_DEFAULTS,
    PARAM_GRID,
    SCALE,
    TrialResult,
    run_trials,
    sweep,
)

__all__ = [
    "CONSTRAINT_CLASSES",
    "proportion_constraints",
    "min_frequency_constraints",
    "average_constraints",
    "conflicted_constraints",
    "make_constraints",
    "PARAM_GRID",
    "PARAM_DEFAULTS",
    "SCALE",
    "N_TRIALS",
    "TrialResult",
    "run_trials",
    "sweep",
]

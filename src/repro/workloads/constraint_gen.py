"""Diversity-constraint workload generators (paper Section 4, setup).

The paper implements "three notions of diversity via three classes of
diversity constraints, namely, minimum frequency, average, and proportional
representation from the attribute domain [Stoyanovich et al.]" and runs its
experiments with proportion constraints.  This module generates all three
classes from a relation's empirical value distribution, plus a
conflict-rate-targeted generator for the Figure 4c sweep.

Suppression can only *remove* occurrences of a value, so generated upper
bounds at or above the original count are vacuous and the interesting
tension is: lower bounds force preservation, upper bounds (below the
original count) force suppression — the conflict-targeted generator uses
overlapping target-tuple sets to create exactly that tension.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Optional

import numpy as np

from ..core.constraints import ConstraintSet, DiversityConstraint
from ..data.relation import Relation
from ..metrics.conflict import conflict_rate


def _eligible_values(
    relation: Relation, attr: str, k: int, max_values: Optional[int] = None
) -> list[tuple[object, int]]:
    """(value, count) pairs with count ≥ k, most frequent first."""
    counts = relation.value_counts(attr)
    pairs = [(v, c) for v, c in counts.items() if c >= k]
    pairs.sort(key=lambda vc: (-vc[1], str(vc[0])))
    return pairs[:max_values] if max_values else pairs


def _candidate_attrs(relation: Relation, attrs: Optional[Sequence[str]]) -> list[str]:
    if attrs is not None:
        relation.schema.validate_names(attrs)
        return list(attrs)
    # Default: categorical QI attributes (numeric ones have huge domains).
    return [
        a.name
        for a in relation.schema
        if a.is_qi and not a.numeric
    ]


def proportion_constraints(
    relation: Relation,
    n_constraints: int,
    k: int = 2,
    alpha: float = 0.5,
    beta: float = 1.0,
    lower_cap: Optional[int] = None,
    attrs: Optional[Sequence[str]] = None,
    value_bias: str = "minority",
    seed: int = 0,
) -> ConstraintSet:
    """Proportional-representation constraints (the paper's default class).

    For a characteristic value ``a`` with original count ``c``, requires the
    published count to stay within ``[⌈alpha·c⌉, ⌈beta·c⌉]`` — each group
    keeps at least an ``alpha`` share of its original representation.
    ``lower_cap`` optionally clamps λl to ``[k, lower_cap]`` for lightweight
    workloads (e.g. "between two and five Asian individuals"-style absolute
    bounds); by default the bound is fully proportional.

    ``value_bias`` controls which characteristic values get constraints:
    ``"minority"`` (default) weights rare values — the groups whose
    representation anonymization actually endangers; ``"frequency"``
    weights common values — which concentrates constraints on the head of
    skewed domains (the contention regime of the paper's Figure 4d);
    ``"uniform"`` draws values uniformly.
    """
    _validate_fractions(alpha, beta)
    rng = np.random.default_rng(seed)
    cap = lower_cap if lower_cap is not None else 10 ** 9
    if cap < k:
        raise ValueError("lower_cap must be at least k")
    candidates = _value_pool(relation, attrs, k)
    chosen = _draw_biased(candidates, n_constraints, rng, value_bias)
    constraints = []
    for attr, value, count in chosen:
        lower = max(k, min(int(np.ceil(alpha * count)), cap))
        upper = max(lower, int(np.ceil(beta * count)))
        constraints.append(DiversityConstraint(attr, value, lower, upper))
    return ConstraintSet(constraints)


def min_frequency_constraints(
    relation: Relation,
    n_constraints: int,
    k: int = 2,
    floor: Optional[int] = None,
    attrs: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> ConstraintSet:
    """Minimum-frequency constraints: lower bound only, vacuous upper bound.

    ``floor`` defaults to ``max(k, 2)`` — above one representative to avoid
    tokenism, as the paper discusses.
    """
    rng = np.random.default_rng(seed)
    floor = max(k, 2) if floor is None else floor
    if floor < 0:
        raise ValueError("floor must be non-negative")
    candidates = [
        (a, v, c) for a, v, c in _value_pool(relation, attrs, k) if c >= floor
    ]
    chosen = _draw(candidates, n_constraints, rng)
    n = len(relation)
    return ConstraintSet(
        DiversityConstraint(attr, value, floor, n) for attr, value, count in chosen
    )


def average_constraints(
    relation: Relation,
    n_constraints: int,
    k: int = 2,
    spread: float = 0.5,
    attrs: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> ConstraintSet:
    """Average-representation constraints.

    Each selected value of attribute A must appear within ``±spread`` of the
    *average* per-value frequency of A's domain (``|R| / |dom(A)|``).  The
    paper found this class more sensitive than proportions — small domains
    make the average a blunt requirement — which our Figure 4 ablation
    bench reproduces.
    """
    if not 0.0 <= spread <= 1.0:
        raise ValueError("spread must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    pool = []
    for attr in _candidate_attrs(relation, attrs):
        values = _eligible_values(relation, attr, k)
        if not values:
            continue
        domain_size = len(relation.value_counts(attr))
        avg = len(relation) / domain_size
        lower = max(k, int(np.floor((1 - spread) * avg)))
        upper = max(lower, int(np.ceil((1 + spread) * avg)))
        for value, count in values:
            pool.append((attr, value, lower, upper))
    chosen_idx = _draw_indices(len(pool), n_constraints, rng)
    return ConstraintSet(
        DiversityConstraint(pool[i][0], pool[i][1], pool[i][2], pool[i][3])
        for i in chosen_idx
    )


def conflicted_constraints(
    relation: Relation,
    n_constraints: int,
    target_cf: float,
    k: int = 2,
    alpha: float = 0.5,
    lower_cap: Optional[int] = None,
    attrs: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> ConstraintSet:
    """Generate Σ whose conflict rate cf(Σ) approximates ``target_cf``.

    Builds a candidate pool of single- and two-attribute proportion
    constraints, then greedily selects the candidate that moves the running
    cf(Σ) closest to the target.  Two-attribute candidates' target tuples
    are subsets of their parent single-attribute candidates' — adding them
    raises cf; disjoint single-attribute values lower it.
    """
    if not 0.0 <= target_cf <= 1.0:
        raise ValueError("target_cf must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    cap = lower_cap if lower_cap is not None else 10 ** 9
    if cap < k:
        raise ValueError("lower_cap must be at least k")
    attr_names = _candidate_attrs(relation, attrs)
    pool: list[DiversityConstraint] = []
    for attr in attr_names:
        for value, count in _eligible_values(relation, attr, k, max_values=12):
            lower = max(k, min(int(np.ceil(alpha * count)), cap))
            pool.append(DiversityConstraint(attr, value, lower, count))
    # Two-attribute refinements: their targets nest inside a parent's.
    for i, attr_a in enumerate(attr_names):
        for attr_b in attr_names[i + 1:]:
            for value_a, _ in _eligible_values(relation, attr_a, k, max_values=4):
                for value_b, _ in _eligible_values(relation, attr_b, k, max_values=4):
                    tids = relation.matching_tids(
                        (attr_a, attr_b), (value_a, value_b)
                    )
                    if len(tids) < k:
                        continue
                    lower = max(k, min(int(np.ceil(alpha * len(tids))), cap))
                    pool.append(
                        DiversityConstraint(
                            (attr_a, attr_b), (value_a, value_b), lower, len(tids)
                        )
                    )
    if len(pool) < n_constraints:
        raise ValueError(
            f"only {len(pool)} candidate constraints available; "
            f"cannot build Σ of size {n_constraints}"
        )
    order = list(rng.permutation(len(pool)))
    selected: list[DiversityConstraint] = [pool[order.pop(0)]]
    while len(selected) < n_constraints:
        best_idx, best_gap = None, None
        for idx in order:
            candidate = ConstraintSet(selected + [pool[idx]])
            gap = abs(conflict_rate(relation, candidate) - target_cf)
            if best_gap is None or gap < best_gap:
                best_idx, best_gap = idx, gap
        order.remove(best_idx)
        selected.append(pool[best_idx])
    return ConstraintSet(selected)


CONSTRAINT_CLASSES = {
    "proportion": proportion_constraints,
    "min_frequency": min_frequency_constraints,
    "average": average_constraints,
}


def make_constraints(
    class_name: str, relation: Relation, n_constraints: int, **kwargs
) -> ConstraintSet:
    """Generate Σ of a named class (``proportion``/``min_frequency``/``average``)."""
    try:
        fn = CONSTRAINT_CLASSES[class_name.lower()]
    except KeyError:
        valid = ", ".join(sorted(CONSTRAINT_CLASSES))
        raise ValueError(f"unknown constraint class {class_name!r}; one of {valid}")
    return fn(relation, n_constraints, **kwargs)


# -- internals ----------------------------------------------------------------


def _value_pool(
    relation: Relation, attrs: Optional[Sequence[str]], k: int
) -> list[tuple[str, object, int]]:
    pool = []
    for attr in _candidate_attrs(relation, attrs):
        for value, count in _eligible_values(relation, attr, k):
            pool.append((attr, value, count))
    return pool


def _draw(pool: list, n: int, rng: np.random.Generator) -> list:
    indices = _draw_indices(len(pool), n, rng)
    return [pool[i] for i in indices]


def _draw_biased(
    pool: list[tuple[str, object, int]],
    n: int,
    rng: np.random.Generator,
    bias: str,
) -> list:
    """Sample values without replacement under a named weighting scheme."""
    if len(pool) < n:
        raise ValueError(
            f"candidate pool of {len(pool)} values cannot supply "
            f"{n} distinct constraints"
        )
    if bias == "minority":
        weights = np.array([1.0 / count for _, _, count in pool])
    elif bias == "frequency":
        weights = np.array([float(count) for _, _, count in pool])
    elif bias == "uniform":
        weights = np.ones(len(pool))
    else:
        raise ValueError(
            f"unknown value_bias {bias!r}; expected minority/frequency/uniform"
        )
    weights /= weights.sum()
    indices = rng.choice(len(pool), size=n, replace=False, p=weights)
    return [pool[i] for i in indices]


def _draw_indices(pool_size: int, n: int, rng: np.random.Generator) -> list[int]:
    if pool_size < n:
        raise ValueError(
            f"candidate pool of {pool_size} values cannot supply "
            f"{n} distinct constraints"
        )
    return list(rng.choice(pool_size, size=n, replace=False))


def _validate_fractions(alpha: float, beta: float) -> None:
    if not 0.0 < alpha <= 1.0:
        raise ValueError("alpha must lie in (0, 1]")
    if beta < alpha:
        raise ValueError("beta must be at least alpha")

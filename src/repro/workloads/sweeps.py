"""Parameter-sweep driver for the evaluation (paper Table 5).

``PARAM_GRID`` encodes Table 5's parameter ranges with defaults in the same
positions the paper bolds.  Row counts are scaled down by ``SCALE`` (the
paper ran 60k–300k Census rows on a 32-core server; we run the same sweep
shape at laptop scale, as documented in DESIGN.md).

``run_trials`` repeats a measurement and reports the average over five
executions, matching "We compute the average runtime over five executions."
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from typing import Any

#: Divisor applied to the paper's |R| values for laptop-scale runs.
SCALE = 100

#: Paper Table 5 (defaults in bold there; marked here via PARAM_DEFAULTS).
PARAM_GRID: dict[str, list] = {
    "n_rows": [60_000 // SCALE, 120_000 // SCALE, 180_000 // SCALE,
               240_000 // SCALE, 300_000 // SCALE],
    "n_constraints": [4, 8, 12, 16, 20],
    "conflict_rate": [0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
    "k": [10, 20, 30, 40, 50],
}

#: The bolded defaults of Table 5 (|R|=120k → scaled, |Σ|=8, cf=0.2, k=10).
PARAM_DEFAULTS: dict[str, Any] = {
    "n_rows": 120_000 // SCALE,
    "n_constraints": 8,
    "conflict_rate": 0.2,
    "k": 10,
}

#: Number of repetitions per measurement (paper: average over five).
N_TRIALS = 5


@dataclass
class TrialResult:
    """Aggregated outcome of repeated measurements of one configuration."""

    label: str
    times: list[float] = field(default_factory=list)
    outputs: list[Any] = field(default_factory=list)

    @property
    def mean_time(self) -> float:
        return sum(self.times) / len(self.times) if self.times else 0.0

    @property
    def min_time(self) -> float:
        return min(self.times) if self.times else 0.0

    @property
    def last_output(self) -> Any:
        return self.outputs[-1] if self.outputs else None


def run_trials(
    fn: Callable[[int], Any],
    label: str = "",
    n_trials: int = N_TRIALS,
) -> TrialResult:
    """Run ``fn(trial_index)`` ``n_trials`` times and record wall times.

    ``fn`` receives the trial index so it can vary seeds per repetition.
    """
    if n_trials < 1:
        raise ValueError("n_trials must be at least 1")
    result = TrialResult(label=label)
    for trial in range(n_trials):
        start = time.perf_counter()
        output = fn(trial)
        result.times.append(time.perf_counter() - start)
        result.outputs.append(output)
    return result


def sweep(
    values: Iterable,
    fn: Callable[[Any, int], Any],
    label_fmt: str = "{}",
    n_trials: int = N_TRIALS,
) -> list[TrialResult]:
    """Run ``fn(value, trial)`` over a parameter range with repetitions."""
    results = []
    for value in values:
        results.append(
            run_trials(
                lambda trial, v=value: fn(v, trial),
                label=label_fmt.format(value),
                n_trials=n_trials,
            )
        )
    return results

"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``anonymize`` — run DIVA on a relation and write the published CSV.
* ``check`` — validate an anonymized relation against k and a constraint file.
* ``dataset`` — generate one of the evaluation datasets as CSV.
* ``convert`` — copy a relation between storage backends.
* ``bench`` — regenerate one paper artifact and print its series.
* ``stream`` — replay a relation as timed micro-batches through the
  streaming engine, writing every published release.
* ``serve`` — run the long-running anonymization service (HTTP ingest,
  versioned release serving with ETags, ``/metrics``).
* ``report`` — render one run: duration histograms, critical path, folded
  stacks and top counters from a JSONL trace (or a registry record).
* ``trace`` — render one request's span tree: a stored ``/trace`` JSON
  body, a JSONL trace, or a live service (``repro trace URL TRACE_ID``
  fetches ``/trace/<id>``; without an id it lists ``/traces``).
* ``compare`` — diff two runs (or a run against its registry baseline)
  and exit non-zero on a regression past the threshold.

Wherever a command reads a relation it accepts a backend spec, not just a
CSV path: ``csv:people.csv``, ``sqlite:census.db::census``,
``columnar:census.cols``, a descriptor ``.json``, or a bare path (see
:mod:`repro.io`).

Constraint files are plain text, one constraint per line in the paper's
notation (``ETH[Asian], 2, 5``); blank lines and ``#`` comments allowed.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from . import obs
from .core.constraints import ConstraintSet, DiversityConstraint
from .core.diva import Diva
from .core.problem import KSigmaProblem
from .data.datasets import DATASETS, load_dataset
from .data.loaders import save_relation
from .io import open_backend
from .metrics.accuracy_utils import measure_output
from .metrics.diversity_check import check_diversity
from .metrics.stats import is_k_anonymous


def load_constraint_file(path: str | Path) -> ConstraintSet:
    """Parse a constraints file (one ``A[a], lo, hi`` per line)."""
    constraints = []
    with open(path) as f:
        for line_no, raw in enumerate(f, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            try:
                constraints.append(DiversityConstraint.parse(line))
            except Exception as exc:
                raise SystemExit(
                    f"{path}:{line_no}: cannot parse constraint: {exc}"
                )
    return ConstraintSet(constraints)


def cmd_anonymize(args: argparse.Namespace) -> int:
    relation = open_backend(args.input).load()
    constraints = (
        load_constraint_file(args.constraints)
        if args.constraints
        else ConstraintSet()
    )
    diva = Diva(
        strategy=args.strategy,
        anonymizer=args.anonymizer,
        best_effort=args.best_effort,
        max_steps=args.max_steps,
        seed=args.seed,
        max_workers=args.workers,
        executor=args.executor,
        solver=args.solver,
    )
    collector = None
    began = time.perf_counter()
    if args.stats or args.trace or args.registry:
        # --stats prints the in-memory summary; --trace streams replayable
        # JSONL events; --registry persists the summarized run.  All can
        # be active at once via a tee.
        collector = obs.Collector()
        sinks: list[obs.Sink] = [collector]
        if args.trace:
            sinks.append(obs.JsonlSink(args.trace))
        sink = sinks[0] if len(sinks) == 1 else obs.TeeSink(*sinks)
        try:
            with obs.use_sink(sink):
                result = diva.run(relation, constraints, args.k)
        finally:
            for s in sinks[1:]:
                s.close()
    else:
        result = diva.run(relation, constraints, args.k)
    elapsed = time.perf_counter() - began
    save_relation(result.relation, args.output)
    metrics = measure_output(result.relation, args.k)
    print(f"wrote {args.output}: |R|={len(result.relation)}")
    print(
        f"accuracy={metrics['accuracy']:.4f} stars={metrics['stars']} "
        f"({metrics['star_ratio']:.1%} of QI cells)"
    )
    if result.dropped:
        print(f"dropped {len(result.dropped)} unsatisfiable constraint(s):")
        for sigma in result.dropped:
            print(f"  {sigma!r}")
    if args.stats:
        print(obs.render(obs.summarize(collector)))
    if args.trace:
        print(f"trace written to {args.trace}")
    if args.registry:
        registry = obs.RunRegistry(args.registry)
        path = registry.append(
            obs.new_record(
                kind="anonymize",
                label=args.label,
                config={
                    "k": args.k,
                    "strategy": args.strategy,
                    "anonymizer": args.anonymizer,
                    "solver": args.solver,
                    "max_steps": args.max_steps,
                    "workers": args.workers,
                    "executor": args.executor,
                    "seed": args.seed,
                },
                metrics={
                    "runtime_s": round(elapsed, 6),
                    "accuracy": metrics["accuracy"],
                    "stars": metrics["stars"],
                    "dropped": len(result.dropped),
                },
                obs_block=(
                    obs.summarize(collector) if collector is not None else None
                ),
            )
        )
        print(f"registry record {path}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    relation = open_backend(args.input).load()
    ok = True
    if not is_k_anonymous(relation, args.k):
        print(f"FAIL: not {args.k}-anonymous")
        ok = False
    else:
        print(f"OK: {args.k}-anonymous")
    if args.constraints:
        constraints = load_constraint_file(args.constraints)
        verdicts = check_diversity(relation, constraints)
        for verdict in verdicts:
            sigma = verdict.constraint
            status = "OK" if verdict.satisfied else "FAIL"
            line = (
                f"{status}: {sigma!r} count={verdict.count} "
                f"range=[{sigma.lower}, {sigma.upper}]"
            )
            if verdict.shortfall:
                line += f" shortfall={verdict.shortfall}"
            if verdict.overage:
                line += f" overage={verdict.overage}"
            print(line)
            ok = ok and verdict.satisfied
        violated = sum(1 for v in verdicts if not v.satisfied)
        print(f"constraints violated: {violated} of {len(verdicts)}")
    if args.original:
        original = open_backend(args.original).load()
        problem = KSigmaProblem(
            original,
            load_constraint_file(args.constraints)
            if args.constraints
            else ConstraintSet(),
            args.k,
        )
        for failure in problem.validate_solution(relation):
            print(f"FAIL: {failure}")
            ok = False
    return 0 if ok else 1


def cmd_dataset(args: argparse.Namespace) -> int:
    relation = load_dataset(args.name, seed=args.seed, n_rows=args.rows)
    save_relation(relation, args.output)
    print(
        f"wrote {args.output}: |R|={len(relation)} "
        f"n={len(relation.schema)} |ΠQI|={relation.distinct_projection_size()}"
    )
    return 0


def cmd_stream(args: argparse.Namespace) -> int:
    """Replay a CSV as micro-batches through the streaming engine.

    Tuples are fed in storage order, ``--batch-size`` at a time (with an
    optional ``--interval`` sleep between batches to simulate timed
    arrivals).  Each published release is written to
    ``<outdir>/release_NNNN.csv`` with its schema sidecar; the buffer is
    flushed at end-of-stream.
    """
    import time

    from .stream import StreamingAnonymizer

    relation = open_backend(args.input).load()
    constraints = (
        load_constraint_file(args.constraints)
        if args.constraints
        else ConstraintSet()
    )
    engine = StreamingAnonymizer(
        relation.schema,
        constraints,
        args.k,
        strategy=args.strategy,
        anonymizer=args.anonymizer,
        max_steps=args.max_steps,
        bootstrap=args.bootstrap,
        max_deferrals=args.max_deferrals,
        scoped_batch=args.scoped_batch,
        seed=args.seed,
        max_workers=args.workers,
        executor=args.executor,
        solver=args.solver,
    )
    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    collector = obs.Collector() if args.stats else None

    def write_release(release, elapsed: float) -> None:
        path = outdir / f"release_{release.sequence:04d}.csv"
        save_relation(release.relation, path)
        print(
            f"release {release.sequence} [{release.mode}] |R|={release.size} "
            f"+{release.admitted} (extended={release.extended}, "
            f"recomputed={release.recomputed}) stars={release.stars} "
            f"pending={release.pending} ({elapsed:.3f}s) -> {path}"
        )

    rows = [row for _, row in relation]
    with obs.use_sink(collector) if collector is not None else _null_context():
        for start in range(0, len(rows), args.batch_size):
            if start and args.interval:
                time.sleep(args.interval)
            began = time.perf_counter()
            release = engine.ingest(rows[start:start + args.batch_size])
            if release is not None:
                write_release(release, time.perf_counter() - began)
        began = time.perf_counter()
        final = engine.flush()
        if final is not None:
            write_release(final, time.perf_counter() - began)

    stats = engine.stats
    print(
        f"stream done: {stats.releases} release(s) from {stats.batches} "
        f"batch(es), {stats.tuples_ingested} tuple(s) "
        f"({stats.tuples_extended} extended, {stats.tuples_recomputed} "
        f"recomputed; extend ratio {stats.extend_ratio:.1%}), "
        f"{stats.scoped_recomputes} scoped / {stats.full_recomputes} full "
        f"recompute(s)"
    )
    if engine.pending_count:
        print(
            f"warning: {engine.pending_count} tuple(s) could not be "
            "published (stream infeasible or below k)"
        )
    if args.stats:
        latency = stats.publish_latency
        if latency.count:
            s = latency.summary()
            print(
                f"publish latency: n={s['count']} p50={s['p50_s']:.6f}s "
                f"p90={s['p90_s']:.6f}s p99={s['p99_s']:.6f}s "
                f"max={s['max_s']:.6f}s"
            )
        print(obs.render(obs.summarize(collector)))
    return 0 if stats.releases else 1


def _null_context():
    import contextlib

    return contextlib.nullcontext()


def cmd_convert(args: argparse.Namespace) -> int:
    """Copy a relation between storage backends.

    Source and destination are backend specs; an unprefixed destination
    path writes CSV, so converting *to* SQLite or columnar needs the
    explicit ``sqlite:db::table`` / ``columnar:dir`` form.
    """
    source = open_backend(args.source)
    relation = source.load()
    dest = open_backend(args.dest)
    target = dest.write_source(relation)
    print(
        f"converted {source.kind} -> {dest.kind}: |R|={len(relation)} "
        f"n={len(relation.schema)} -> {target}"
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the anonymization service against a storage backend.

    The backend provides the stream schema (and receives every published
    release back when ``--write-releases`` is set); arrivals come in over
    HTTP.  With ``--replay`` the backend's existing rows are fed through
    the engine as micro-batches before the socket opens, so the service
    starts with a published release instead of an empty ledger.
    """
    import asyncio

    from .serve import AnonymizationService
    from .stream import StreamingAnonymizer

    backend = open_backend(args.source)
    schema = backend.schema()
    constraints = (
        load_constraint_file(args.constraints)
        if args.constraints
        else ConstraintSet()
    )
    engine = StreamingAnonymizer(
        schema,
        constraints,
        args.k,
        strategy=args.strategy,
        anonymizer=args.anonymizer,
        max_steps=args.max_steps,
        bootstrap=args.bootstrap,
        max_deferrals=args.max_deferrals,
        scoped_batch=args.scoped_batch,
        seed=args.seed,
        max_workers=args.workers,
        executor=args.executor,
        solver=args.solver,
    )
    service = AnonymizationService(
        engine,
        micro_batch=args.micro_batch,
        release_backend=backend if args.write_releases else None,
        slo_p99_s=args.slo_p99,
        error_budget=args.error_budget,
    )
    if args.replay:
        rows = [row for _, row in backend.load()]
        for start in range(0, len(rows), args.micro_batch):
            engine.ingest(rows[start:start + args.micro_batch])
        print(
            f"replayed {len(rows)} row(s) from {backend.kind} source: "
            f"{engine.stats.releases} release(s), "
            f"{engine.pending_count} pending"
        )
    try:
        asyncio.run(service.run_forever(args.host, args.port))
    except KeyboardInterrupt:
        pass
    return 0


def _report_error(message: str) -> int:
    """Diagnostic + exit code 2 (bad input, distinct from regressions)."""
    print(f"repro report: {message}", file=sys.stderr)
    return 2


def cmd_report(args: argparse.Namespace) -> int:
    """Render one run: histograms, critical path, folded stacks, counters.

    ``input`` is either a JSONL trace (``anonymize --trace``) — analyzed
    in full, including tree reconstruction — or a registry record JSON,
    whose summarized ``obs`` block is rendered (a summary has no per-event
    data, so tree views are unavailable for records).

    Exits 2 with a one-line diagnostic on a missing file, a trace with no
    events (e.g. the instrumented run crashed before emitting), or a
    truncated/corrupt file — a report pipeline should fail loudly, not
    render an empty profile.
    """
    path = Path(args.input)
    if not path.exists():
        return _report_error(f"{path}: no such file")
    if path.suffix == ".jsonl":
        try:
            analysis = obs.analyze(path)
        except (ValueError, KeyError) as exc:
            # json.JSONDecodeError is a ValueError: a half-written final
            # line (killed writer) or non-trace JSONL lands here.
            return _report_error(f"{path}: truncated or corrupt trace ({exc})")
        if not analysis.roots and not analysis.counters:
            return _report_error(
                f"{path}: trace has no spans or counters (empty or "
                "instrumentation was disabled for the run)"
            )
        print(f"trace: {path}")
        print(obs.render_analysis(analysis, top_counters=args.top))
        return 0
    try:
        record = obs.load_run(path)
    except ValueError as exc:
        return _report_error(f"{path}: not a run record ({exc})")
    try:
        header = (
            f"run: {record['run_id']} ({record['kind']}) "
            f"at {record['created_at']} git={record.get('git_sha') or '?'}"
        )
    except (KeyError, TypeError):
        return _report_error(
            f"{path}: not a run record (missing run_id/kind/created_at)"
        )
    print(header)
    for section in ("config", "metrics"):
        entries = record.get(section) or {}
        if entries:
            print(f"{section}: " + ", ".join(
                f"{key}={value}" for key, value in entries.items()
            ))
    block = record.get("obs")
    if block:
        print(obs.render(block))
    else:
        print("(record carries no obs block; critical path needs a .jsonl trace)")
    return 0


def _trace_error(message: str) -> int:
    print(f"repro trace: {message}", file=sys.stderr)
    return 2


def _render_trace_payload(payload: dict, args: argparse.Namespace) -> int:
    """Render one ``/trace`` JSON body (fetched or stored)."""
    spans = payload.get("spans")
    if not isinstance(spans, list):
        return _trace_error("payload has no 'spans' list (not a /trace body?)")
    header = "trace: " + str(payload.get("trace_id", "?"))
    meta = [
        f"{key}={payload[key]}"
        for key in ("state", "method", "path", "status", "wall_s")
        if key in payload
    ]
    if meta:
        header += " (" + ", ".join(meta) + ")"
    print(header)
    if not spans:
        return _trace_error("trace has no spans (still open, or evicted)")
    roots = obs.forest_from_payload(spans)
    analysis = obs.analyze_forest(roots)
    print(obs.render_analysis(analysis, top_counters=args.top))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Render a request's span tree from a service or a stored artifact.

    ``source`` is one of:

    * ``http(s)://host:port`` — fetch ``GET /trace/<trace_id>`` from a
      running service (``trace_id`` required), or list ``GET /traces``
      when no id is given;
    * a ``.json`` file holding a stored ``/trace`` body (the serve-smoke
      artifact, or a saved ``curl`` response);
    * a ``.jsonl`` trace — analyzed like ``repro report``, id-linked.

    Exits 2 on fetch/parse failures or an unknown trace id.
    """
    import json

    source = args.source
    if source.startswith(("http://", "https://")):
        import urllib.error
        import urllib.request

        base = source.rstrip("/")
        url = (
            f"{base}/trace/{args.trace_id}" if args.trace_id
            else f"{base}/traces"
        )
        try:
            with urllib.request.urlopen(url, timeout=10) as resp:
                payload = json.load(resp)
        except urllib.error.HTTPError as exc:
            return _trace_error(f"{url}: HTTP {exc.code} {exc.reason}")
        except (urllib.error.URLError, OSError) as exc:
            return _trace_error(f"{url}: {exc}")
        except ValueError as exc:
            return _trace_error(f"{url}: invalid JSON ({exc})")
        if args.trace_id:
            return _render_trace_payload(payload, args)
        completed = payload.get("traces", [])
        print(f"completed traces ({len(completed)}, newest first):")
        for entry in completed:
            line = "  " + str(entry.get("trace_id", "?"))
            meta = [
                f"{key}={entry[key]}"
                for key in ("method", "path", "status", "wall_s", "spans")
                if key in entry
            ]
            if meta:
                line += "  " + " ".join(meta)
            print(line)
        open_ids = payload.get("open", [])
        if open_ids:
            print(f"open traces ({len(open_ids)}):")
            for trace_id in open_ids:
                print(f"  {trace_id}")
        return 0
    path = Path(source)
    if not path.exists():
        return _trace_error(f"{path}: no such file")
    if path.suffix == ".jsonl":
        try:
            analysis = obs.analyze(path)
        except (ValueError, KeyError) as exc:
            return _trace_error(f"{path}: truncated or corrupt trace ({exc})")
        if not analysis.roots and not analysis.counters:
            return _trace_error(f"{path}: trace has no spans or counters")
        print(f"trace: {path}")
        print(obs.render_analysis(analysis, top_counters=args.top))
        return 0
    try:
        with open(path) as f:
            payload = json.load(f)
    except ValueError as exc:
        return _trace_error(f"{path}: invalid JSON ({exc})")
    if not isinstance(payload, dict):
        return _trace_error(f"{path}: expected a /trace JSON object")
    return _render_trace_payload(payload, args)


def cmd_compare(args: argparse.Namespace) -> int:
    """Compare a candidate run against a baseline; exit 1 on regression.

    The baseline is ``--against PATH`` when given, otherwise the most
    recent registry run with the candidate's label (excluding the
    candidate itself) — the run-vs-registry-baseline mode.
    """
    candidate = obs.load_run(args.candidate)
    if args.against:
        baseline = obs.load_run(args.against)
    else:
        registry = obs.RunRegistry(args.registry)
        baseline = registry.latest(
            label=args.label or candidate.get("label"),
            exclude_run_id=candidate.get("run_id"),
        )
        if baseline is None:
            print(
                f"no baseline run labelled "
                f"{args.label or candidate.get('label')!r} in {registry.root}"
            )
            return 2
    comparison = obs.compare_runs(
        baseline, candidate, threshold=args.threshold,
        min_baseline_s=args.min_baseline,
    )
    print(obs.render_comparison(comparison))
    return 0 if comparison.ok else 1


def cmd_bench(args: argparse.Namespace) -> int:
    from .bench import harness, reporting

    runners = {
        "table4": lambda: reporting.format_table(harness.table4_characteristics()),
        "fig4ab": lambda: _two_tables(harness.fig4ab_vs_nconstraints()),
        "fig4c": lambda: _two_tables(harness.fig4c_vs_conflict()),
        "fig4d": lambda: _two_tables(harness.fig4d_vs_distribution()),
        "fig5ab": lambda: _two_tables(harness.fig5ab_vs_k()),
        "fig5cd": lambda: _two_tables(harness.fig5cd_vs_size()),
    }
    try:
        runner = runners[args.artifact]
    except KeyError:
        raise SystemExit(
            f"unknown artifact {args.artifact!r}; one of {sorted(runners)}"
        )
    print(runner())
    return 0


def _two_tables(experiment) -> str:
    from .bench.reporting import experiment_table

    return (
        "runtime (s):\n"
        + experiment_table(experiment, "runtime")
        + "\naccuracy:\n"
        + experiment_table(experiment, "accuracy")
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DIVA: diversity-preserving k-anonymization (EDBT 2021)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("anonymize", help="run DIVA on a relation")
    p.add_argument(
        "input",
        help="input backend spec: CSV path, sqlite:DB::TABLE, "
        "columnar:DIR, or descriptor .json",
    )
    p.add_argument("output", help="output CSV path")
    p.add_argument("-k", type=int, required=True, help="privacy parameter k")
    p.add_argument("-c", "--constraints", help="diversity constraints file")
    p.add_argument(
        "--strategy", default="maxfanout",
        choices=["basic", "minchoice", "maxfanout"],
    )
    p.add_argument("--anonymizer", default="k-member")
    p.add_argument("--best-effort", action="store_true")
    p.add_argument(
        "--solver", default="exact", choices=["exact", "approx", "auto"],
        help="DiverseClustering tier: exact backtracking, poly-time "
        "approximation, or auto (exact with escalation to a warm-started "
        "approx pass on budget exhaustion)",
    )
    p.add_argument(
        "--max-steps", type=int, default=100_000,
        help="candidate-evaluation budget of the exact search "
        "(default %(default)s)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--workers", type=int, default=None,
        help="color constraint-graph components on a pool of this size",
    )
    p.add_argument(
        "--executor", default="thread", choices=["thread", "process"],
        help="pool flavor for --workers (process ships the relation via "
        "shared memory)",
    )
    p.add_argument(
        "--stats", action="store_true",
        help="print per-phase span timings and search counters",
    )
    p.add_argument(
        "--trace", metavar="FILE",
        help="write span/counter events as replayable JSONL to FILE",
    )
    p.add_argument(
        "--registry", metavar="DIR",
        help="append a schema-versioned run record (config, metrics, obs "
        "summary) to the run registry rooted at DIR",
    )
    p.add_argument(
        "--label", default="anonymize",
        help="registry label for this run (default: anonymize)",
    )
    p.set_defaults(fn=cmd_anonymize)

    p = sub.add_parser("check", help="validate an anonymized relation")
    p.add_argument("input", help="anonymized relation (backend spec)")
    p.add_argument("-k", type=int, required=True)
    p.add_argument("-c", "--constraints", help="diversity constraints file")
    p.add_argument(
        "--original", help="original relation (backend spec) for R ⊑ R* checking"
    )
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser(
        "convert", help="copy a relation between storage backends"
    )
    p.add_argument("source", help="source backend spec")
    p.add_argument(
        "dest",
        help="destination backend spec (unprefixed paths write CSV; use "
        "sqlite:DB::TABLE or columnar:DIR for the other stores)",
    )
    p.set_defaults(fn=cmd_convert)

    p = sub.add_parser("dataset", help="generate an evaluation dataset")
    p.add_argument("name", choices=sorted(DATASETS))
    p.add_argument("output", help="output CSV path")
    p.add_argument("--rows", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_dataset)

    p = sub.add_parser(
        "stream",
        help="replay a relation as micro-batches through the streaming engine",
    )
    p.add_argument("input", help="input relation (backend spec)")
    p.add_argument("outdir", help="directory for release_NNNN.csv outputs")
    p.add_argument("-k", type=int, required=True, help="privacy parameter k")
    p.add_argument("-c", "--constraints", help="diversity constraints file")
    p.add_argument(
        "--batch-size", type=int, default=100,
        help="tuples per micro-batch (default 100)",
    )
    p.add_argument(
        "--interval", type=float, default=0.0,
        help="seconds to sleep between batches (timed replay)",
    )
    p.add_argument(
        "--bootstrap", type=int, default=None,
        help="buffered tuples required before the first release (default k)",
    )
    p.add_argument(
        "--max-deferrals", type=int, default=2,
        help="publishes a stranded sub-k residual may wait before a full recompute",
    )
    p.add_argument(
        "--scoped-batch", type=int, default=1,
        help="defer scoped recomputes and drain the accumulated residual "
        "queue every Nth round in one pooled run (default 1 = every batch)",
    )
    p.add_argument(
        "--strategy", default="maxfanout",
        choices=["basic", "minchoice", "maxfanout"],
    )
    p.add_argument("--anonymizer", default="k-member")
    p.add_argument(
        "--solver", default="exact", choices=["exact", "approx", "auto"],
        help="solver tier for recompute runs (see anonymize --solver)",
    )
    p.add_argument(
        "--max-steps", type=int, default=100_000,
        help="candidate-evaluation budget of the exact search "
        "(default %(default)s)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--workers", type=int, default=None,
        help="pool size for recompute runs (see anonymize --workers)",
    )
    p.add_argument(
        "--executor", default="thread", choices=["thread", "process"],
        help="pool flavor for --workers",
    )
    p.add_argument(
        "--stats", action="store_true",
        help="print stream span timings and stream.* counters",
    )
    p.set_defaults(fn=cmd_stream)

    p = sub.add_parser(
        "serve", help="run the long-running anonymization service"
    )
    p.add_argument(
        "source",
        help="backend spec providing the stream schema (and optionally "
        "the replayed history / release write-back target)",
    )
    p.add_argument("-k", type=int, required=True, help="privacy parameter k")
    p.add_argument("-c", "--constraints", help="diversity constraints file")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=0,
        help="listen port (default 0 = pick a free port and print it)",
    )
    p.add_argument(
        "--micro-batch", type=int, default=100,
        help="ingested rows accumulated before the engine publishes "
        "(default 100)",
    )
    p.add_argument(
        "--replay", action="store_true",
        help="feed the backend's existing rows through the engine before "
        "serving, so the service starts with a published release",
    )
    p.add_argument(
        "--write-releases", action="store_true",
        help="write every published release back to the source backend "
        "(sequence-numbered targets)",
    )
    p.add_argument(
        "--bootstrap", type=int, default=None,
        help="buffered tuples required before the first release (default k)",
    )
    p.add_argument(
        "--max-deferrals", type=int, default=2,
        help="publishes a stranded sub-k residual may wait before a full recompute",
    )
    p.add_argument(
        "--scoped-batch", type=int, default=1,
        help="scoped-recompute coalescing factor (see stream --scoped-batch)",
    )
    p.add_argument(
        "--strategy", default="maxfanout",
        choices=["basic", "minchoice", "maxfanout"],
    )
    p.add_argument("--anonymizer", default="k-member")
    p.add_argument(
        "--solver", default="auto", choices=["exact", "approx", "auto"],
        help="solver tier for recompute runs (default auto: a service "
        "should degrade to an approx-quality release rather than buffer "
        "a hard batch indefinitely)",
    )
    p.add_argument(
        "--max-steps", type=int, default=100_000,
        help="candidate-evaluation budget of the exact search "
        "(default %(default)s)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--workers", type=int, default=None,
        help="pool size for recompute runs (see anonymize --workers)",
    )
    p.add_argument(
        "--executor", default="thread", choices=["thread", "process"],
        help="pool flavor for --workers",
    )
    p.add_argument(
        "--slo-p99", type=float, default=0.5,
        help="ingest-to-publish p99 latency objective in seconds; /healthz "
        "degrades when observed p99 exceeds it (default %(default)s)",
    )
    p.add_argument(
        "--error-budget", type=float, default=0.01,
        help="tolerated request error rate; /healthz degrades when burn "
        "exceeds 1.0 (default %(default)s)",
    )
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "report",
        help="analyze a JSONL trace (critical path, flamegraph stacks, "
        "histograms) or render a registry run record",
    )
    p.add_argument("input", help="trace .jsonl or registry record .json")
    p.add_argument(
        "--top", type=int, default=20,
        help="counters/stacks rows to show (default 20)",
    )
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser(
        "trace",
        help="render one request's span tree from a live service "
        "(/trace/<id>), a stored /trace JSON body, or a JSONL trace",
    )
    p.add_argument(
        "source",
        help="service base URL (http://host:port), a stored /trace .json, "
        "or a trace .jsonl",
    )
    p.add_argument(
        "trace_id", nargs="?", default=None,
        help="trace id to fetch from a service URL (omit to list /traces)",
    )
    p.add_argument(
        "--top", type=int, default=20,
        help="counters/stacks rows to show (default 20)",
    )
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "compare",
        help="compare a run record against a baseline; exit 1 on regression",
    )
    p.add_argument("candidate", help="candidate run record .json")
    p.add_argument(
        "--against", metavar="FILE",
        help="explicit baseline run record (otherwise the latest registry "
        "run with the candidate's label)",
    )
    p.add_argument(
        "--registry", metavar="DIR", default="benchmarks/results",
        help="registry root to pick the baseline from "
        "(default: benchmarks/results)",
    )
    p.add_argument(
        "--label", default=None,
        help="baseline label to match (default: the candidate's label)",
    )
    p.add_argument(
        "--threshold", type=float, default=obs.registry.DEFAULT_THRESHOLD,
        help="slowdown ratio that counts as a regression (default %(default)s)",
    )
    p.add_argument(
        "--min-s", dest="min_baseline", type=float,
        default=obs.registry.DEFAULT_MIN_BASELINE_S,
        help="ignore durations below this baseline floor, in seconds "
        "(default %(default)s)",
    )
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("bench", help="regenerate one paper artifact")
    p.add_argument(
        "artifact",
        help="table4 | fig4ab | fig4c | fig4d | fig5ab | fig5cd",
    )
    p.set_defaults(fn=cmd_bench)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())

"""Streaming-engine benchmark: amortized publish cost vs full re-runs.

Replays a census-shaped relation through :class:`repro.stream.
StreamingAnonymizer` in micro-batches on the vectorized backend and
records the result through the run registry (``benchmarks/results/
runs/`` plus the ``BENCH_stream.json`` duplicate): per-batch publish
latencies, the extend-vs-recompute split, and — the headline number — the
*amortized* per-batch publish cost next to the cost of the naive
alternative, re-running full DIVA on the whole history for every batch.

Excluded from tier-1 runs by the ``bench`` marker (``pyproject.toml``
defaults to ``-m "not bench"``); run with::

    PYTHONPATH=src python -m pytest benchmarks/test_stream.py -m bench -s -p no:cacheprovider

The timed region covers everything ``ingest`` does — admission checks,
scoped/full recomputes when the decision rule falls back, and the ledger's
(k, Σ) re-validation — so the amortized figure is an honest end-to-end
publish cost, not just the happy extend path.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.reporting import write_bench_artifact
from repro.core.diva import run_diva
from repro.core.index import use_kernel_backend
from repro.data.datasets import make_census
from repro.metrics.stats import is_k_anonymous
from repro.stream import StreamingAnonymizer
from repro.workloads.constraint_gen import proportion_constraints

pytestmark = [pytest.mark.bench, pytest.mark.stream]

N_ROWS = 2_000
BATCH_SIZE = 100
BOOTSTRAP = 1_000
K = 5
N_CONSTRAINTS = 6


def test_amortized_publish_cost_below_full_rerun():
    relation = make_census(seed=0, n_rows=N_ROWS)
    # lower_cap keeps λl absolute and small so arrival *prefixes* are
    # feasible — fully proportional lower bounds are derived from the
    # complete relation and stall the stream in bootstrap retries until
    # nearly everything has arrived, which would benchmark infeasibility
    # handling rather than steady-state maintenance.
    sigma = proportion_constraints(
        relation, N_CONSTRAINTS, k=K, lower_cap=8, seed=0
    )
    rows = [row for _, row in relation]

    with use_kernel_backend("vectorized"):
        # The naive per-batch alternative: full DIVA over the whole history.
        start = time.perf_counter()
        full = run_diva(relation, sigma, K, seed=0)
        full_diva_s = time.perf_counter() - start
        assert is_k_anonymous(full.relation, K)

        engine = StreamingAnonymizer(
            relation.schema, sigma, K, bootstrap=BOOTSTRAP, seed=0
        )
        batch_latencies: list[float] = []
        publish_latencies: list[float] = []
        for begin in range(0, len(rows), BATCH_SIZE):
            batch = rows[begin:begin + BATCH_SIZE]
            start = time.perf_counter()
            release = engine.ingest(batch)
            elapsed = time.perf_counter() - start
            batch_latencies.append(elapsed)
            if release is not None:
                publish_latencies.append(elapsed)
        start = time.perf_counter()
        final = engine.flush()
        flush_s = time.perf_counter() - start
        if final is None:
            final = engine.release
        assert final is not None
        assert is_k_anonymous(final.relation, K)
        assert sigma.is_satisfied_by(final.relation)

    stats = engine.stats
    stream_total_s = sum(batch_latencies) + flush_s
    amortized_batch_s = stream_total_s / len(batch_latencies)
    results = {
        "n": N_ROWS,
        "k": K,
        "n_constraints": len(sigma),
        "batch_size": BATCH_SIZE,
        "bootstrap": BOOTSTRAP,
        "backend": "vectorized",
        "full_diva_s": round(full_diva_s, 6),
        "stream_total_s": round(stream_total_s, 6),
        "amortized_batch_s": round(amortized_batch_s, 6),
        "max_batch_s": round(max(batch_latencies), 6),
        "publish_latencies_s": [round(t, 6) for t in publish_latencies],
        "releases": stats.releases,
        "release_modes": [s.mode for s in engine.ledger.stamps],
        "tuples_extended": stats.tuples_extended,
        "tuples_recomputed": stats.tuples_recomputed,
        "extend_ratio": round(stats.extend_ratio, 4),
        "scoped_recomputes": stats.scoped_recomputes,
        "full_recomputes": stats.full_recomputes,
        "recompute_ratio": round(
            (stats.scoped_recomputes + stats.full_recomputes)
            / max(stats.releases, 1),
            4,
        ),
        "pending_unpublished": engine.pending_count,
        "final_size": len(final.relation),
        "final_stars": final.relation.star_count(),
        "full_diva_stars": full.relation.star_count(),
    }
    write_bench_artifact(
        "stream",
        results,
        config={
            "n_rows": N_ROWS,
            "k": K,
            "batch_size": BATCH_SIZE,
            "bootstrap": BOOTSTRAP,
        },
        metrics={
            "full_diva_s": results["full_diva_s"],
            "stream_total_s": results["stream_total_s"],
            "amortized_batch_s": results["amortized_batch_s"],
        },
    )
    publish_summary = engine.stats.publish_latency.summary()
    print(f"publish_latency: {publish_summary}")
    for key, value in results.items():
        print(f"{key}: {value}")

    # Acceptance: maintaining the release incrementally must beat paying a
    # full DIVA re-run on every micro-batch.
    assert amortized_batch_s < full_diva_s
    assert stats.releases >= 2  # bootstrap plus at least one increment

"""Trace-context overhead gate: traced vs untraced pipeline runtime.

Every span a traced request emits pays for an id allocation
(``os.urandom``) and a contextvar swap on top of the base span cost.
This benchmark runs the same census-shaped DIVA point with a collector
sink twice — once under an installed :class:`~repro.obs.tracectx
.TraceContext`, once untraced — and gates the ratio at **5%**: request
tracing must stay cheap enough to leave on for every service request.
Both sides take best-of-N to damp scheduler noise; the result lands in
the registry and ``BENCH_trace.json``.

Excluded from tier-1 runs by the ``bench`` marker; run with::

    PYTHONPATH=src python -m pytest benchmarks/test_trace_overhead.py -m bench -s -p no:cacheprovider
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.bench.harness import run_diva_point
from repro.bench.reporting import write_bench_artifact
from repro.data.datasets import make_census
from repro.obs import tracectx
from repro.workloads.constraint_gen import proportion_constraints

pytestmark = pytest.mark.bench

N_ROWS = 2_000
K = 5
N_CONSTRAINTS = 6
TRIALS = 3
MAX_OVERHEAD = 0.05


def test_trace_overhead_gate():
    relation = make_census(seed=3, n_rows=N_ROWS)
    sigma = proportion_constraints(relation, N_CONSTRAINTS, k=K, seed=3)

    def timed(traced: bool) -> float:
        best = float("inf")
        for _ in range(TRIALS):
            ctx = tracectx.new_trace() if traced else None
            with tracectx.use_trace(ctx):
                point = run_diva_point(
                    relation, sigma, K, "maxfanout", seed=3, collect_obs=True
                )
            best = min(best, point.runtime)
        return best

    untraced = timed(False)
    traced = timed(True)
    overhead = traced / untraced - 1.0 if untraced else 0.0

    # Sanity: the traced run actually stamped ids on its span stream.
    with obs.collecting() as collector:
        with tracectx.use_trace(tracectx.new_trace()):
            run_diva_point(relation, sigma, K, "maxfanout", seed=3)
    assert collector.spans, "expected spans from the traced run"
    assert all(e.trace_id is not None for e in collector.spans)
    assert all(e.span_id is not None for e in collector.spans)
    span_count = len(collector.spans)

    payload = {
        "n_rows": N_ROWS,
        "k": K,
        "n_constraints": N_CONSTRAINTS,
        "trials": TRIALS,
        "untraced_runtime_s": round(untraced, 6),
        "traced_runtime_s": round(traced, 6),
        "trace_overhead": round(overhead, 4),
        "spans_per_run": span_count,
        "max_overhead": MAX_OVERHEAD,
    }
    record = write_bench_artifact(
        "trace",
        payload,
        config={"n_rows": N_ROWS, "k": K, "n_constraints": N_CONSTRAINTS},
        metrics={"traced_runtime_s": round(traced, 6)},
    )
    print(json.dumps(record, indent=2))

    assert overhead < MAX_OVERHEAD, (
        f"trace-context overhead {overhead:.1%} exceeds the "
        f"{MAX_OVERHEAD:.0%} gate (untraced {untraced:.4f}s, "
        f"traced {traced:.4f}s)"
    )

"""Exact-solver search benchmark: the columnar search-state engine vs the
pure-Python reference bookkeeping.

Runs the BENCH_obs workload (census at 2 000 rows, six proportional
constraints, k=5, maxfanout) end to end under both kernel backends and
records, per backend, the search construction wall (candidate enumeration
plus engine registration), the solve wall, and the node-expansion
throughput ``nodes_expanded / solve_s``.  Results go through the run
registry (``benchmarks/results/runs/`` plus ``BENCH_search.json`` at the
repo root); CI gates the ``*_s`` metrics against the committed
``benchmarks/results/baseline-search.json`` with ``repro compare`` and this
test asserts the PR's headline floor — the engine must expand nodes at
least 3x faster than the reference path on the same trajectory.

Excluded from tier-1 runs by the ``bench`` marker; run with::

    PYTHONPATH=src python -m pytest benchmarks/test_search.py -m bench -s -p no:cacheprovider

Timing method: best-of-N wall clock over fresh ``ColoringSearch``
instances.  The process-global memos (enumeration + contribution) stay
warm across repeats by design — that is the steady state the engine runs
in under ``diva``, parallel components, and streaming republishes — while
the per-search state (counters, registry, coverage) is rebuilt each
repeat, so the timed region is the real incremental-maintenance path.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench.reporting import write_bench_artifact
from repro.core.coloring import ColoringSearch
from repro.core.index import use_kernel_backend
from repro.data.datasets import make_census
from repro.workloads.constraint_gen import proportion_constraints

pytestmark = pytest.mark.bench

N_ROWS = 2_000
N_CONSTRAINTS = 6
K = 5
SEED = 3
REPEATS = 3

#: The acceptance floor: vectorized node-expansion throughput must be at
#: least this multiple of the reference path's on the same trajectory.
MIN_THROUGHPUT_RATIO = 3.0


def _measure(backend: str, relation, sigma) -> dict:
    best_init = float("inf")
    best_solve = float("inf")
    nodes = 0
    with use_kernel_backend(backend):
        for _ in range(REPEATS):
            start = time.perf_counter()
            search = ColoringSearch(
                relation,
                sigma,
                K,
                strategy="maxfanout",
                rng=np.random.default_rng(SEED),
            )
            init_s = time.perf_counter() - start
            start = time.perf_counter()
            result = search.run()
            solve_s = time.perf_counter() - start
            assert result.success
            nodes = result.stats.nodes_expanded
            best_init = min(best_init, init_s)
            best_solve = min(best_solve, solve_s)
    return {
        "backend": backend,
        "init_s": round(best_init, 6),
        "solve_s": round(best_solve, 6),
        "nodes_expanded": nodes,
        "nodes_per_s": round(nodes / best_solve, 1),
    }


def test_search_state_engine_throughput():
    relation = make_census(seed=SEED, n_rows=N_ROWS)
    sigma = proportion_constraints(relation, N_CONSTRAINTS, k=K, seed=SEED)

    # Reference first so its cold index build cannot warm the vectorized
    # leg's caches; each backend keeps its own kernel-level memo spaces.
    reference = _measure("reference", relation, sigma)
    vectorized = _measure("vectorized", relation, sigma)

    assert vectorized["nodes_expanded"] == reference["nodes_expanded"]
    ratio = vectorized["nodes_per_s"] / reference["nodes_per_s"]

    payload = {
        "workload": "BENCH_obs config, exact coloring solve",
        "rows": [reference, vectorized],
        "throughput_ratio": round(ratio, 2),
    }
    write_bench_artifact(
        "search",
        payload,
        config={
            "dataset": "census",
            "n_rows": N_ROWS,
            "n_constraints": N_CONSTRAINTS,
            "k": K,
            "strategy": "maxfanout",
            "seed": SEED,
            "repeats": REPEATS,
        },
        metrics={
            "reference_init_s": reference["init_s"],
            "reference_solve_s": reference["solve_s"],
            "vectorized_init_s": vectorized["init_s"],
            "vectorized_solve_s": vectorized["solve_s"],
            "throughput_ratio": round(ratio, 2),
        },
    )

    print()
    for row in (reference, vectorized):
        print(
            f"{row['backend']:>10}: init {row['init_s'] * 1e3:8.1f} ms  "
            f"solve {row['solve_s'] * 1e3:7.2f} ms  "
            f"{row['nodes_per_s']:7.1f} nodes/s"
        )
    print(f"throughput ratio: {ratio:.2f}x (floor {MIN_THROUGHPUT_RATIO}x)")

    assert ratio >= MIN_THROUGHPUT_RATIO, (
        f"search-state engine throughput ratio {ratio:.2f}x is below the "
        f"{MIN_THROUGHPUT_RATIO}x acceptance floor"
    )

"""Table 4 — dataset characteristics.

Regenerates the |R| / n / |ΠQI(R)| / |Σ| grid for the four evaluation
datasets.  Attribute counts match the paper exactly; row counts are the
documented laptop-scale defaults, and the QI-projection cardinalities land
in the same regime as the paper's (Credit tiny, the others large).
"""

from repro.bench import format_table, table4_characteristics


def test_table4_characteristics(once, benchmark):
    rows = once(benchmark, table4_characteristics)
    print("\nTable 4 — data characteristics (laptop scale):")
    print(format_table(rows))

    by_name = {r["dataset"]: r for r in rows}
    # Attribute counts are scale-free and must match the paper exactly.
    assert by_name["pantheon"]["n"] == 17
    assert by_name["census"]["n"] == 40
    assert by_name["credit"]["n"] == 20
    assert by_name["popsyn"]["n"] == 7
    # Credit is exactly the paper's size; its QI projection is tiny
    # (paper: 60) while every other dataset's is large.
    assert by_name["credit"]["|R|"] == 1000
    assert by_name["credit"]["|ΠQI(R)|"] < 300
    for name in ("pantheon", "census", "popsyn"):
        row = by_name[name]
        assert row["|ΠQI(R)|"] > row["|R|"] * 0.1, name
    # Σ sizes as in Table 4.
    assert by_name["pantheon"]["|Σ|"] == 24
    assert by_name["census"]["|Σ|"] == 21
    assert by_name["credit"]["|Σ|"] == 18
    assert by_name["popsyn"]["|Σ|"] == 10

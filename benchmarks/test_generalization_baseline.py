"""Extension bench — Samarati full-domain generalization vs suppression.

Not a paper artifact: the paper's model is cell suppression, with
generalization noted as the general mechanism (suppression is "a maximal
form of generalization").  This bench quantifies that remark: Samarati's
hierarchy-based recoding achieves the same k with far less information
destroyed than whole-cell stars, measured by the NCP-style generalization
loss that treats a star as a fully generalized cell.
"""

import numpy as np

from repro.anonymize import KMemberAnonymizer
from repro.data.datasets import make_popsyn
from repro.data.hierarchies import hierarchies_for
from repro.generalize import IncognitoAnonymizer, SamaratiAnonymizer
from repro.generalize.recoding import generalization_loss
from repro.metrics.stats import is_k_anonymous

K = 5


def test_generalization_vs_suppression(once, benchmark):
    relation = make_popsyn(seed=31, n_rows=300)
    hierarchies = hierarchies_for("popsyn", relation)

    def run():
        samarati, solution = SamaratiAnonymizer(
            hierarchies, maxsup=15
        ).anonymize(relation, K)
        suppressed = KMemberAnonymizer(np.random.default_rng(0)).anonymize(
            relation, K
        )
        return samarati, solution, suppressed

    samarati, solution, suppressed = once(benchmark, run)
    assert is_k_anonymous(samarati, K)
    assert is_k_anonymous(suppressed, K)

    loss_samarati = generalization_loss(
        relation.restrict(samarati.tids), samarati, hierarchies
    )
    loss_suppression = generalization_loss(relation, suppressed, hierarchies)
    print(
        f"\nGeneralization baseline (popsyn, k={K}): "
        f"samarati NCP loss={loss_samarati:.3f} at height {solution.height} "
        f"({len(solution.suppressed)} outliers removed) vs "
        f"k-member suppression loss={loss_suppression:.3f}"
    )
    # Hierarchical recoding destroys strictly less information than stars.
    assert loss_samarati < loss_suppression


def test_incognito_frontier(once, benchmark):
    relation = make_popsyn(seed=32, n_rows=250)
    hierarchies = hierarchies_for("popsyn", relation)
    incognito = IncognitoAnonymizer(hierarchies, maxsup=12)

    def run():
        anonymized, best = incognito.anonymize(relation, K)
        solutions = incognito.minimal_solutions(relation, K)
        return anonymized, best, solutions

    anonymized, best, solutions = once(benchmark, run)
    assert is_k_anonymous(anonymized, K)
    samarati = SamaratiAnonymizer(hierarchies, maxsup=12)
    _, samarati_sol = samarati.anonymize(relation, K)
    loss_incognito = incognito.information_loss(relation, best)
    loss_samarati = incognito.information_loss(relation, samarati_sol)
    print(
        f"\nIncognito frontier: {len(solutions)} minimal solution(s); "
        f"chosen loss={loss_incognito:.3f} vs samarati loss={loss_samarati:.3f}"
    )
    # Frontier selection is never worse than the height-minimal pick.
    assert loss_incognito <= loss_samarati + 1e-9

"""Quality-vs-speed benchmark for the approximation solver tier.

The ISSUE-7 headline artifact (``BENCH_approx.json``, registry-backed):
a (k, Σ) grid over conflicted census workloads where

* on configurations the exact tier solves within the step budget, the
  approx tier's suppression cost is recorded as a ratio against exact
  (quality), alongside the wall-clock ratio (speed);
* on configurations where exact raises :class:`SearchBudgetExceeded` —
  the gate requires at least one — the approx tier must still produce a
  release, and every approx release must pass the exact validators
  (:meth:`KSigmaProblem.validate_solution`, ``is_k_anonymous``,
  ``check_diversity``).

Excluded from tier-1 runs by the ``bench`` marker; run with::

    PYTHONPATH=src python -m pytest benchmarks/test_approx_tier.py -m bench -s -p no:cacheprovider
"""

from __future__ import annotations

import json
import time

import pytest

from repro.bench.reporting import write_bench_artifact
from repro.core.coloring import SearchBudgetExceeded
from repro.core.diva import run_diva
from repro.core.problem import KSigmaProblem
from repro.data.datasets import make_census
from repro.metrics.diversity_check import check_diversity
from repro.metrics.stats import is_k_anonymous
from repro.workloads.constraint_gen import conflicted_constraints

pytestmark = pytest.mark.bench

MAX_STEPS = 20_000

#: (n_rows, k, |Σ|, target conflict rate) — the first two are within the
#: exact tier's reach (quality points); the last two exhaust its budget
#: (graceful-degradation points, the artifact's reason to exist).
GRID = [
    (800, 2, 8, 0.7),
    (800, 2, 10, 0.9),
    (800, 5, 8, 0.7),
    (1200, 5, 10, 0.8),
]


def _run(relation, sigma, k, solver):
    start = time.perf_counter()
    try:
        result = run_diva(relation, sigma, k, max_steps=MAX_STEPS, solver=solver)
    except SearchBudgetExceeded:
        return {"outcome": "budget", "wall_s": round(time.perf_counter() - start, 6)}
    wall = time.perf_counter() - start
    return {
        "outcome": "success",
        "wall_s": round(wall, 6),
        "stars": result.relation.star_count(),
        "relation": result.relation,
    }


def test_approx_quality_vs_speed():
    rows = []
    budget_points_solved = 0
    for n_rows, k, n_sigma, cf in GRID:
        relation = make_census(seed=3, n_rows=n_rows)
        sigma = conflicted_constraints(relation, n_sigma, cf, k=k, seed=3)
        problem = KSigmaProblem(relation, sigma, k)
        exact = _run(relation, sigma, k, "exact")
        approx = _run(relation, sigma, k, "approx")

        # Conformance: every approx release passes the exact validators.
        assert approx["outcome"] == "success", (
            f"approx tier failed on n={n_rows} k={k} |Σ|={n_sigma} cf={cf}"
        )
        release = approx.pop("relation")
        failures = problem.validate_solution(release)
        assert not failures, failures
        assert is_k_anonymous(release, k)
        assert all(v.satisfied for v in check_diversity(release, sigma))

        row = {
            "n_rows": n_rows,
            "k": k,
            "n_constraints": n_sigma,
            "target_cf": cf,
            "exact_outcome": exact["outcome"],
            "exact_wall_s": exact["wall_s"],
            "approx_wall_s": approx["wall_s"],
            "approx_stars": approx["stars"],
        }
        if exact["outcome"] == "success":
            row["exact_stars"] = exact["stars"]
            row["cost_ratio"] = round(
                approx["stars"] / exact["stars"], 4
            ) if exact["stars"] else None
            row["speedup"] = round(exact["wall_s"] / approx["wall_s"], 2)
        else:
            budget_points_solved += 1
        rows.append(row)

    # The artifact's gate: the tier must solve at least one configuration
    # that exact cannot touch at this budget.
    assert budget_points_solved >= 1, (
        f"no grid point exhausted the exact budget ({MAX_STEPS} steps); "
        "the graceful-degradation claim is unexercised"
    )

    quality = [r["cost_ratio"] for r in rows if "cost_ratio" in r]
    payload = {
        "max_steps": MAX_STEPS,
        "grid": rows,
        "budget_points_solved_by_approx": budget_points_solved,
        "worst_cost_ratio": max(quality) if quality else None,
    }
    record = write_bench_artifact(
        "approx",
        payload,
        config={"max_steps": MAX_STEPS, "grid_size": len(GRID)},
        metrics={
            "approx_solve_s": max(r["approx_wall_s"] for r in rows),
            "worst_cost_ratio": max(quality) if quality else None,
        },
    )
    print(json.dumps(record, indent=2))

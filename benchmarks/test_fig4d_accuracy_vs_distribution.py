"""Figure 4d — accuracy vs data distribution (Pop-Syn).

Paper mechanism: skewed (Zipfian) domains concentrate the constraints'
target tuples on a few head values, so constraint clusters contend for the
same tuples; uniform domains spread values evenly and avoid that contention
("This conflict occurs more often in the Zipfian case than the Gaussian").

At laptop scale we reproduce the *mechanism* directly — the measured
conflict rate cf(Σ) orders Zipfian > Gaussian ≥ Uniform — and report the
accuracy per distribution.  The paper's accuracy ordering (uniform best)
does not transfer to our discernibility-based accuracy instantiation,
because skewed data is intrinsically more compressible under suppression (a
dataset-level effect their unspecified normalization apparently removes);
EXPERIMENTS.md documents this divergence.
"""

from repro.bench import experiment_table, fig4d_vs_distribution


def test_fig4d_contention_vs_distribution(once, benchmark):
    experiment = once(
        benchmark,
        lambda: fig4d_vs_distribution(
            n_rows=400, n_constraints=6, k=5, seeds=(0, 1, 2)
        ),
    )
    print("\nFigure 4d — accuracy vs distribution (Pop-Syn, seed-averaged):")
    print(experiment_table(experiment, "accuracy"))
    print("measured conflict rate cf(Σ) per distribution:")
    print(experiment_table(experiment, "conflict_rate"))

    series = next(iter(experiment.series.values()))
    cf = {p.x: p.extras["conflict_rate"] for p in series}
    # The contention mechanism: Zipfian concentrates target tuples.
    assert cf["zipfian"] > cf["uniform"], cf
    assert cf["zipfian"] > cf["gaussian"], cf

    for strategy, points in experiment.series.items():
        for point in points:
            assert 0.0 <= point.accuracy <= 1.0
        # The workloads stay satisfiable: few constraints dropped across
        # 3 seeds × 3 distributions.
        total_dropped = sum(p.extras["dropped"] for p in points)
        assert total_dropped <= 4, (strategy, total_dropped)

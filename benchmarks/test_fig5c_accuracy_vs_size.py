"""Figure 5c — accuracy vs |R| (Census).

Paper shape: all algorithms are sensitive to |R|; DIVA's accuracy is
comparable to (in the paper, better than) the baselines at every size while
also satisfying Σ.  As new attribute values appear with more rows, cluster
alignment degrades and accuracy drifts down for everyone.

We assert per-size comparability of DIVA to the best baseline (within a
margin: our accuracy instantiation charges DIVA's extra diversity
suppression directly) and that DIVA clearly beats the weakest baseline.
The paper's mild downward drift in |R| does not transfer to the
log-normalized accuracy (bigger relations have more normalization headroom);
EXPERIMENTS.md documents this metric-definition divergence.
"""

from repro.bench import experiment_table, fig5cd_vs_size

SIZES = (300, 600, 900)
DIVA = ("minchoice", "maxfanout")
BASELINES = ("k-member", "oka", "mondrian")


def test_fig5c_accuracy_vs_size(once, benchmark):
    experiment = once(
        benchmark,
        lambda: fig5cd_vs_size(sizes=SIZES, n_constraints=6, k=5, seed=0),
    )
    print("\nFigure 5c — accuracy vs |R| (Census):")
    print(experiment_table(experiment, "accuracy"))

    for n_rows in SIZES:
        diva_best = max(
            p.accuracy for name in DIVA for p in experiment.series[name]
            if p.x == n_rows
        )
        baseline_best = max(
            p.accuracy for name in BASELINES for p in experiment.series[name]
            if p.x == n_rows
        )
        baseline_worst = min(
            p.accuracy for name in BASELINES for p in experiment.series[name]
            if p.x == n_rows
        )
        assert diva_best >= baseline_best - 0.12, (
            f"|R|={n_rows}: DIVA ({diva_best:.3f}) should be comparable to "
            f"the best baseline ({baseline_best:.3f})"
        )
        assert diva_best > baseline_worst, (
            f"|R|={n_rows}: DIVA should beat the weakest baseline"
        )
    for points in experiment.series.values():
        for point in points:
            assert 0.0 <= point.accuracy <= 1.0

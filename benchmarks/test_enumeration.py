"""Enumeration-engine benchmark: columnar engine vs the per-call oracle.

Runs the BENCH_obs DIVA configuration (census 2 000 × k=5 × 6 proportion
constraints) twice on the vectorized backend and compares the
``coloring.enumerate_candidates`` span totals:

* **engine** — the memoized rank-space engine
  (:mod:`repro.core.enumeration`), measured cold (memo cleared);
* **legacy** — :func:`repro.core.clusterings._enumerate_generic` scoring
  and ordering through per-call :class:`RelationIndex` kernels, i.e. the
  pre-engine vectorized enumeration this PR replaced (the 53% hot path).

The record lands in the run registry plus ``BENCH_enum.json``; the gate
asserts the engine cuts enumeration time by at least 3×.

Excluded from tier-1 runs by the ``bench`` marker; run with::

    PYTHONPATH=src python -m pytest benchmarks/test_enumeration.py -m bench -s -p no:cacheprovider
"""

from __future__ import annotations

import json

import pytest

from repro.bench.harness import run_diva_point
from repro.bench.reporting import write_bench_artifact
from repro.core import clusterings
from repro.core.enumeration import get_enum_memo
from repro.data.datasets import make_census
from repro.obs import SPAN_DIVA_RUN, SPAN_ENUMERATE_CANDIDATES
from repro.workloads.constraint_gen import proportion_constraints

pytestmark = pytest.mark.bench

N_ROWS = 2_000
K = 5
N_CONSTRAINTS = 6
MIN_SPEEDUP = 3.0
REPEATS = 3


def _legacy_dispatch(index, pool, k, lo, hi, max_candidates, caps, rng, already=0):
    """The pre-engine vectorized path, shimmed to the engine's call shape."""
    return clusterings._enumerate_generic(
        index.relation,
        pool,
        k,
        lo,
        hi,
        max_candidates,
        caps,
        rng,
        already=already,
        index=index,
    )


def _measure(monkeypatch, legacy: bool):
    """Best-of-N enumerate-span total at the BENCH_obs config.

    A fresh relation per repetition keeps every index cache cold so both
    legs pay identical non-enumeration costs; the memo is cleared so the
    engine leg measures generation, not a cache hit.
    """
    best_span = float("inf")
    best_point = None
    for rep in range(REPEATS):
        relation = make_census(seed=3, n_rows=N_ROWS)
        sigma = proportion_constraints(relation, N_CONSTRAINTS, k=K, seed=3)
        get_enum_memo().clear()
        with pytest.MonkeyPatch.context() as mp:
            if legacy:
                mp.setattr(clusterings, "enumerate_pool", _legacy_dispatch)
            point = run_diva_point(
                relation, sigma, K, "maxfanout", seed=3, collect_obs=True
            )
        span = point.extras["obs"]["spans"][SPAN_ENUMERATE_CANDIDATES]["total_s"]
        if span < best_span:
            best_span, best_point = span, point
    return best_span, best_point


def test_enumeration_engine_speedup(monkeypatch):
    legacy_s, legacy_point = _measure(monkeypatch, legacy=True)
    engine_s, engine_point = _measure(monkeypatch, legacy=False)

    # Same search, same output — only the enumeration engine differs.
    assert engine_point.accuracy == legacy_point.accuracy

    speedup = legacy_s / engine_s if engine_s else float("inf")
    block = engine_point.extras["obs"]
    payload = {
        "n_rows": N_ROWS,
        "k": K,
        "n_constraints": N_CONSTRAINTS,
        "legacy_enumerate_s": round(legacy_s, 6),
        "engine_enumerate_s": round(engine_s, 6),
        "speedup": round(speedup, 3),
        "legacy_run_s": round(
            legacy_point.extras["obs"]["spans"][SPAN_DIVA_RUN]["total_s"], 6
        ),
        "engine_run_s": round(block["spans"][SPAN_DIVA_RUN]["total_s"], 6),
        "subsets_generated": block["counters"].get("enum.subsets_generated", 0),
        "dominated_pruned": block["counters"].get("enum.dominated_pruned", 0),
        "obs": block,
    }
    record = write_bench_artifact(
        "enum",
        payload,
        config={"n_rows": N_ROWS, "k": K, "n_constraints": N_CONSTRAINTS},
        metrics={
            "engine_enumerate_s": round(engine_s, 6),
            "speedup": round(speedup, 3),
        },
    )
    print(json.dumps(record, indent=2))

    assert speedup >= MIN_SPEEDUP, (
        f"enumeration engine speedup {speedup:.2f}x < required "
        f"{MIN_SPEEDUP}x (legacy {legacy_s:.4f}s, engine {engine_s:.4f}s)"
    )

"""Figure 5d — runtime vs |R| (Census).

Paper shape: every technique's runtime increases with |R| (more clusters to
evaluate); DIVA additionally pays for conflict checking among clusterings.

We assert monotone-ish growth (largest size slower than smallest) for every
algorithm, and that DIVA remains more expensive than the cheapest baseline.
"""

from repro.bench import experiment_table, fig5cd_vs_size

SIZES = (300, 600, 900)
DIVA = ("minchoice", "maxfanout")


def test_fig5d_runtime_vs_size(once, benchmark):
    experiment = once(
        benchmark,
        lambda: fig5cd_vs_size(sizes=SIZES, n_constraints=6, k=5, seed=0),
    )
    print("\nFigure 5d — runtime (s) vs |R| (Census):")
    print(experiment_table(experiment, "runtime"))

    for algorithm, points in experiment.series.items():
        by_x = {p.x: p for p in points}
        assert by_x[max(SIZES)].runtime > by_x[min(SIZES)].runtime, (
            f"{algorithm}: runtime should grow with |R|"
        )

    for n_rows in SIZES:
        diva_min = min(
            p.runtime for name in DIVA for p in experiment.series[name]
            if p.x == n_rows
        )
        baseline_min = min(
            p.runtime
            for name in ("k-member", "mondrian")
            for p in experiment.series[name]
            if p.x == n_rows
        )
        assert diva_min > baseline_min, (
            f"|R|={n_rows}: DIVA should cost more than the cheapest baseline"
        )

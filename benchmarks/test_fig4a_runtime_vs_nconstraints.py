"""Figure 4a — runtime vs |Σ| (Census).

Paper shape: DIVA-Basic's runtime grows explosively with |Σ| (it can assign
O(|R|) clusterings to each constraint in arbitrary order), while MinChoice
and MaxFanOut scale roughly linearly thanks to their pruning orders.

We assert two things at laptop scale:

1. runtime grows with |Σ| for every strategy on the Census sweep;
2. on an adversarial instance (one rigid constraint whose only clustering
   competes with many permissive neighbours), Basic backtracks strictly
   more than both informed strategies — the mechanism behind its blow-up.
"""

import numpy as np

from repro.bench import experiment_table, fig4ab_vs_nconstraints
from repro.core.coloring import ColoringSearch
from repro.core.constraints import ConstraintSet, DiversityConstraint
from repro.data.relation import Relation, Schema

SIGMA_SIZES = (4, 8, 12)


def test_fig4a_runtime_vs_nconstraints(once, benchmark):
    experiment = once(
        benchmark,
        lambda: fig4ab_vs_nconstraints(
            sigma_sizes=SIGMA_SIZES, n_rows=240, k=5, seed=0
        ),
    )
    print("\nFigure 4a — runtime (s) vs |Σ| (Census):")
    print(experiment_table(experiment, "runtime"))
    print("search effort (candidate evaluations):")
    print(experiment_table(experiment, "candidates_tried"))

    for strategy, points in experiment.series.items():
        by_x = {p.x: p for p in points}
        assert by_x[max(SIGMA_SIZES)].runtime > by_x[min(SIGMA_SIZES)].runtime, (
            f"{strategy}: runtime should grow with |Σ|"
        )


def _adversarial_instance(seed: int):
    """One rigid constraint (single clustering) vs permissive neighbours.

    Tuples 0..3 carry the rigid value; every tuple carries one of the
    permissive attributes' values, so permissive clusterings randomly eat
    the rigid pool unless the rigid node is colored first.
    """
    rng = np.random.default_rng(seed)
    schema = Schema.from_names(qi=["RIGID", "P1", "P2", "P3", "NOISE"])
    n = 40
    rows = []
    for i in range(n):
        rows.append(
            (
                "hot" if i < 4 else "cold",
                f"p1-{i % 2}",
                f"p2-{i % 2}",
                f"p3-{i % 2}",
                f"n{rng.integers(0, 10)}",
            )
        )
    relation = Relation(schema, rows)
    constraints = ConstraintSet(
        [
            DiversityConstraint("RIGID", "hot", 4, 4),     # single choice
            DiversityConstraint("P1", "p1-0", 4, 30),
            DiversityConstraint("P2", "p2-0", 4, 30),
            DiversityConstraint("P3", "p3-1", 4, 30),
        ]
    )
    return relation, constraints


def test_fig4a_basic_backtracks_most(once, benchmark):
    def measure():
        # The comparison isolates node/candidate *ordering* — the paper's
        # Algorithm 4 over static candidate pools — so the dynamic
        # residual-candidate refinement is disabled for all strategies.
        efforts = {"basic": 0, "minchoice": 0, "maxfanout": 0}
        for seed in range(8):
            relation, constraints = _adversarial_instance(seed)
            for strategy in efforts:
                search = ColoringSearch(
                    relation,
                    constraints,
                    k=2,
                    strategy=strategy,
                    rng=np.random.default_rng(seed),
                )
                search._dynamic_candidates = lambda index: []
                result = search.run()
                assert result.success, strategy
                efforts[strategy] += search.stats.candidates_tried
        return efforts

    efforts = once(benchmark, measure)
    print(f"\nFigure 4a mechanism — total candidate evaluations: {efforts}")
    assert efforts["basic"] > efforts["minchoice"]
    assert efforts["basic"] > efforts["maxfanout"]

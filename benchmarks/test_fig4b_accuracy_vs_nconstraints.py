"""Figure 4b — accuracy vs |Σ| (Census).

Paper shape: accuracy declines (roughly linearly) as constraints are added —
each new constraint forces more tuples into diversity clusters whose QI
values rarely align, so suppression grows.  The sweep uses nested Σ
prefixes, so difficulty is monotone by construction.
"""

from repro.bench import experiment_table, fig4ab_vs_nconstraints

SIGMA_SIZES = (4, 8, 12)


def test_fig4b_accuracy_vs_nconstraints(once, benchmark):
    experiment = once(
        benchmark,
        lambda: fig4ab_vs_nconstraints(
            sigma_sizes=SIGMA_SIZES, n_rows=240, k=5, seed=0
        ),
    )
    print("\nFigure 4b — accuracy vs |Σ| (Census):")
    print(experiment_table(experiment, "accuracy"))
    print("constraints dropped (best-effort):")
    print(experiment_table(experiment, "dropped"))

    for strategy, points in experiment.series.items():
        by_x = {p.x: p for p in points}
        first = by_x[min(SIGMA_SIZES)]
        last = by_x[max(SIGMA_SIZES)]
        # Accuracy must not improve as constraints are added (small
        # tolerance for metric noise at this scale).
        assert last.accuracy <= first.accuracy + 0.02, (
            f"{strategy}: accuracy should decline with |Σ| "
            f"({first.accuracy:.3f} -> {last.accuracy:.3f})"
        )
        # All points remain valid probabilities.
        for point in points:
            assert 0.0 <= point.accuracy <= 1.0

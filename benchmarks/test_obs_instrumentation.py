"""Observability benchmark: DIVA pipeline profile via ``repro.obs``.

Runs one census-shaped DIVA point with ``collect_obs=True`` and records
the embedded ``obs`` block — per-phase span timings plus the search
counters — through the run registry (``benchmarks/results/runs/`` plus
the ``BENCH_obs.json`` duplicate at the repo root).  This is the artifact
that tracks where pipeline time goes (clustering vs suppress vs k-member)
and how search effort scales, PR over PR.  It also measures the null-sink
overhead — the same point with instrumentation compiled to the default
discard sink — which must stay under 5%.

Excluded from tier-1 runs by the ``bench`` marker; run with::

    PYTHONPATH=src python -m pytest benchmarks/test_obs_instrumentation.py -m bench -s -p no:cacheprovider
"""

from __future__ import annotations

import json

import pytest

from repro.bench.harness import run_diva_point
from repro.bench.reporting import write_bench_artifact
from repro.data.datasets import make_census
from repro.obs import (
    SPAN_DIVA_RUN,
    SPAN_DIVERSE_CLUSTERING,
    SPAN_KMEMBER_CLUSTER,
)
from repro.workloads.constraint_gen import proportion_constraints

pytestmark = pytest.mark.bench

N_ROWS = 2_000
K = 5
N_CONSTRAINTS = 6


def _null_sink_overhead(relation, sigma) -> float:
    """Twin-index race: instrumented ``preserved_count`` vs a faithful
    replica of its pre-instrumentation body, both under the default NULL
    sink (same methodology as ``tests/test_obs.py::TestOverheadGuard``).
    Returns the best observed instrumented/uninstrumented ratio minus 1.
    """
    import time

    from repro.core.index import RelationIndex

    constraint = next(iter(sigma))
    tids = list(relation.tids)

    def uninstrumented(index, cluster, c):
        sub = index._pc_cache.get(c)
        if sub is None:
            sub = index._pc_cache[c] = {}
        cached = sub.get(cluster)
        if cached is None:
            cached = index._preserved_count_uncached(cluster, c)
            sub[cluster] = cached
        return cached

    best = float("inf")
    for attempt in range(4):
        index_base = RelationIndex(relation)
        index_inst = RelationIndex(relation)
        for index in (index_base, index_inst):
            index.artifacts(constraint)
        base = inst = float("inf")
        for rep in range(5):
            offset = attempt * 10 + rep
            rotated = tids[offset:] + tids[:offset]
            parts = [
                frozenset(rotated[i:i + 8])
                for i in range(0, len(rotated) - 7, 8)
            ]
            start = time.perf_counter()
            for cluster in parts:
                uninstrumented(index_base, cluster, constraint)
            base = min(base, time.perf_counter() - start)
            start = time.perf_counter()
            for cluster in parts:
                index_inst.preserved_count(cluster, constraint)
            inst = min(inst, time.perf_counter() - start)
        best = min(best, inst / base)
    return best - 1.0


def test_pipeline_profile():
    relation = make_census(seed=3, n_rows=N_ROWS)
    sigma = proportion_constraints(relation, N_CONSTRAINTS, k=K, seed=3)
    point = run_diva_point(
        relation, sigma, K, "maxfanout", seed=3, collect_obs=True
    )

    block = point.extras["obs"]
    spans, counters = block["spans"], block["counters"]
    # The profile must actually cover the pipeline, not be an empty shell.
    for name in (SPAN_DIVA_RUN, SPAN_DIVERSE_CLUSTERING, SPAN_KMEMBER_CLUSTER):
        assert name in spans, f"missing span {name!r}"
        assert spans[name]["total_s"] >= 0.0
    assert counters.get("graph.nodes", 0) >= 1
    assert counters.get("kmember.clusters", 0) >= 1

    # Null-sink overhead: the same point with the default discard sink.
    # Best-of-3 on both sides to damp scheduler noise.
    instrumented = min(
        run_diva_point(
            relation, sigma, K, "maxfanout", seed=3, collect_obs=True
        ).runtime
        for _ in range(3)
    )
    null_sink = min(
        run_diva_point(relation, sigma, K, "maxfanout", seed=3).runtime
        for _ in range(3)
    )
    overhead = instrumented / null_sink - 1.0 if null_sink else 0.0
    null_overhead = _null_sink_overhead(relation, sigma)

    payload = {
        "n_rows": N_ROWS,
        "k": K,
        "n_constraints": N_CONSTRAINTS,
        "runtime_s": round(point.runtime, 6),
        "accuracy": round(point.accuracy, 6),
        "null_sink_runtime_s": round(null_sink, 6),
        "collector_runtime_s": round(instrumented, 6),
        "collector_overhead": round(overhead, 4),
        "null_sink_overhead": round(null_overhead, 4),
        "obs": block,
    }
    record = write_bench_artifact(
        "obs",
        payload,
        config={"n_rows": N_ROWS, "k": K, "n_constraints": N_CONSTRAINTS},
        metrics={"runtime_s": round(point.runtime, 6)},
    )
    print(json.dumps(record, indent=2))

    # Phase spans must nest sanely inside the run span (generous slack:
    # these are wall-clock timings, not exact accounting).
    run_total = spans[SPAN_DIVA_RUN]["total_s"]
    assert spans[SPAN_DIVERSE_CLUSTERING]["total_s"] <= run_total + 1e-6

"""Observability benchmark: DIVA pipeline profile via ``repro.obs``.

Runs one census-shaped DIVA point with ``collect_obs=True`` and records
the embedded ``obs`` block — per-phase span timings plus the search
counters — to ``BENCH_obs.json`` at the repo root.  This is the artifact
that tracks where pipeline time goes (clustering vs suppress vs k-member)
and how search effort scales, PR over PR.

Excluded from tier-1 runs by the ``bench`` marker; run with::

    PYTHONPATH=src python -m pytest benchmarks/test_obs_instrumentation.py -m bench -s -p no:cacheprovider
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench.harness import run_diva_point
from repro.data.datasets import make_census
from repro.obs import (
    SPAN_DIVA_RUN,
    SPAN_DIVERSE_CLUSTERING,
    SPAN_KMEMBER_CLUSTER,
)
from repro.workloads.constraint_gen import proportion_constraints

pytestmark = pytest.mark.bench

N_ROWS = 2_000
K = 5
N_CONSTRAINTS = 6
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"


def test_pipeline_profile():
    relation = make_census(seed=3, n_rows=N_ROWS)
    sigma = proportion_constraints(relation, N_CONSTRAINTS, k=K, seed=3)
    point = run_diva_point(
        relation, sigma, K, "maxfanout", seed=3, collect_obs=True
    )

    block = point.extras["obs"]
    spans, counters = block["spans"], block["counters"]
    # The profile must actually cover the pipeline, not be an empty shell.
    for name in (SPAN_DIVA_RUN, SPAN_DIVERSE_CLUSTERING, SPAN_KMEMBER_CLUSTER):
        assert name in spans, f"missing span {name!r}"
        assert spans[name]["total_s"] >= 0.0
    assert counters.get("graph.nodes", 0) >= 1
    assert counters.get("kmember.clusters", 0) >= 1

    payload = {
        "n_rows": N_ROWS,
        "k": K,
        "n_constraints": N_CONSTRAINTS,
        "runtime_s": round(point.runtime, 6),
        "accuracy": round(point.accuracy, 6),
        "obs": block,
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))

    # Phase spans must nest sanely inside the run span (generous slack:
    # these are wall-clock timings, not exact accounting).
    run_total = spans[SPAN_DIVA_RUN]["total_s"]
    assert spans[SPAN_DIVERSE_CLUSTERING]["total_s"] <= run_total + 1e-6

"""Figure 4c — accuracy vs conflict rate (Pantheon).

Paper shape: accuracy declines as the conflict rate cf(Σ) grows — the more
the constraints' target tuples overlap, the costlier (or less often
satisfiable) the diverse clustering becomes.  MaxFanOut and MinChoice beat
Basic (+17% / +9% in the paper).

We assert the decline end-to-end (low-conflict accuracy > high-conflict
accuracy for every strategy) on the Pantheon-like dataset.
"""

from repro.bench import experiment_table, fig4c_vs_conflict

TARGETS = (0.0, 0.4, 0.8)


def test_fig4c_accuracy_vs_conflict(once, benchmark):
    experiment = once(
        benchmark,
        lambda: fig4c_vs_conflict(
            conflict_targets=TARGETS,
            n_rows=300,
            n_constraints=6,
            k=5,
            seed=0,
        ),
    )
    print("\nFigure 4c — accuracy vs conflict rate (Pantheon):")
    print(experiment_table(experiment, "accuracy"))
    print("achieved cf per target:")
    print(experiment_table(experiment, "achieved_cf"))

    for strategy, points in experiment.series.items():
        by_x = {p.x: p for p in points}
        low, high = by_x[min(TARGETS)], by_x[max(TARGETS)]
        assert high.accuracy < low.accuracy + 0.02, (
            f"{strategy}: accuracy should decline with conflict "
            f"({low.accuracy:.3f} -> {high.accuracy:.3f})"
        )
    # The generator actually produced increasing conflict rates.
    any_series = next(iter(experiment.series.values()))
    achieved = [p.extras["achieved_cf"] for p in any_series]
    assert achieved == sorted(achieved)
    assert achieved[-1] > achieved[0]

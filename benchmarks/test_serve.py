"""Service throughput benchmark: release fetches and ingest-to-publish.

Runs the real :class:`repro.serve.AnonymizationService` (socket and all)
on a background event-loop thread, drives it with ``http.client`` from
the test thread, and records through the run registry (``BENCH_serve.
json`` duplicate):

* release-fetch latency p50/p99 **without** ETag revalidation (full
  ``200`` bodies, the cold-consumer path) and **with** ``If-None-Match``
  (``304`` answers, the steady-state consumer path);
* ingest-to-publish latency — the client-observed duration of each
  ``POST /ingest`` that crossed the micro-batch threshold, which covers
  admission, any recompute, ledger re-validation and the response.

The headline assertion is structural, not a wall-clock gate: a ``304``
revalidation must not be slower than shipping the full body, otherwise
the ETag cache is not doing its job.

Excluded from tier-1 runs by the ``bench`` marker; run with::

    PYTHONPATH=src python -m pytest benchmarks/test_serve.py -m bench -s -p no:cacheprovider
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
import time

import pytest

from repro.bench.reporting import write_bench_artifact
from repro.core.index import use_kernel_backend
from repro.data.datasets import make_census
from repro.serve import AnonymizationService
from repro.stream import StreamingAnonymizer
from repro.workloads.constraint_gen import proportion_constraints

pytestmark = [pytest.mark.bench, pytest.mark.serve]

N_ROWS = 800
MICRO_BATCH = 100
BOOTSTRAP = 400
K = 5
N_CONSTRAINTS = 4
FETCH_SAMPLES = 200


class ServiceThread:
    """Run one service on a dedicated event-loop thread."""

    def __init__(self, service: AnonymizationService):
        self.service = service
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "ServiceThread":
        self._thread.start()
        assert self._ready.wait(timeout=30), "service did not start"
        return self

    def __exit__(self, *exc) -> None:
        assert self._loop is not None and self._stop is not None
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.port = await self.service.start()
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await self.service.stop()


def percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def test_release_serving_throughput():
    relation = make_census(seed=0, n_rows=N_ROWS)
    sigma = proportion_constraints(relation, N_CONSTRAINTS, k=K, lower_cap=8, seed=0)
    rows = [row for _, row in relation]

    with use_kernel_backend("vectorized"):
        engine = StreamingAnonymizer(
            relation.schema, sigma, K,
            bootstrap=BOOTSTRAP, seed=0, solver="auto",
        )
        service = AnonymizationService(engine, micro_batch=MICRO_BATCH)
        with ServiceThread(service) as running:
            conn = http.client.HTTPConnection("127.0.0.1", running.port)

            # -- ingest-to-publish ------------------------------------------
            ingest_latencies: list[float] = []
            publish_latencies: list[float] = []
            for begin in range(0, len(rows), MICRO_BATCH):
                payload = json.dumps(
                    {"rows": [list(r) for r in rows[begin:begin + MICRO_BATCH]]}
                )
                start = time.perf_counter()
                conn.request(
                    "POST", "/ingest", body=payload,
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                body = json.loads(response.read())
                elapsed = time.perf_counter() - start
                assert response.status == 202
                ingest_latencies.append(elapsed)
                if body["published"]:
                    publish_latencies.append(elapsed)
            conn.request("POST", "/flush", body="{}")
            response = conn.getresponse()
            response.read()
            assert response.status == 202
            assert engine.release is not None

            # -- release fetches --------------------------------------------
            conn.request("GET", "/release")
            response = conn.getresponse()
            etag = response.getheader("ETag")
            body_bytes = len(response.read())
            assert response.status == 200 and etag

            full_latencies: list[float] = []
            for _ in range(FETCH_SAMPLES):
                start = time.perf_counter()
                conn.request("GET", "/release")
                response = conn.getresponse()
                response.read()
                full_latencies.append(time.perf_counter() - start)
                assert response.status == 200

            revalidate_latencies: list[float] = []
            for _ in range(FETCH_SAMPLES):
                start = time.perf_counter()
                conn.request("GET", "/release", headers={"If-None-Match": etag})
                response = conn.getresponse()
                response.read()
                revalidate_latencies.append(time.perf_counter() - start)
                assert response.status == 304

            conn.request("GET", "/metrics")
            metrics_text = conn.getresponse().read().decode()
            conn.close()

    full_p50 = percentile(full_latencies, 0.50)
    revalidate_p50 = percentile(revalidate_latencies, 0.50)
    # Loopback makes the two paths near-identical in wall clock (both are
    # one cached-buffer write), so gate on "not meaningfully slower"
    # rather than a strict ordering that loses to scheduler noise.
    assert revalidate_p50 <= full_p50 * 1.5, (
        f"304 revalidation (p50 {revalidate_p50:.6f}s) slower than full "
        f"fetch (p50 {full_p50:.6f}s)"
    )
    assert f'name="serve.release_not_modified"}} {FETCH_SAMPLES}' in metrics_text

    results = {
        "n": N_ROWS,
        "k": K,
        "micro_batch": MICRO_BATCH,
        "bootstrap": BOOTSTRAP,
        "backend": "vectorized",
        "release_body_bytes": body_bytes,
        "fetch_samples": FETCH_SAMPLES,
        "fetch_p50_s": round(full_p50, 6),
        "fetch_p99_s": round(percentile(full_latencies, 0.99), 6),
        "revalidate_p50_s": round(revalidate_p50, 6),
        "revalidate_p99_s": round(percentile(revalidate_latencies, 0.99), 6),
        "ingest_p50_s": round(percentile(ingest_latencies, 0.50), 6),
        "ingest_max_s": round(max(ingest_latencies), 6),
        "publish_latencies_s": [round(t, 6) for t in publish_latencies],
        "releases": engine.stats.releases,
        "release_modes": [s.mode for s in engine.ledger.stamps],
        "extend_ratio": round(engine.stats.extend_ratio, 4),
    }
    write_bench_artifact(
        "serve",
        results,
        config={
            "n_rows": N_ROWS,
            "k": K,
            "micro_batch": MICRO_BATCH,
            "bootstrap": BOOTSTRAP,
        },
        metrics={
            "fetch_p50_s": results["fetch_p50_s"],
            "fetch_p99_s": results["fetch_p99_s"],
            "revalidate_p50_s": results["revalidate_p50_s"],
            "ingest_p50_s": results["ingest_p50_s"],
        },
    )
    print(
        f"\nrelease fetch: p50={results['fetch_p50_s']}s "
        f"p99={results['fetch_p99_s']}s ({body_bytes} bytes); "
        f"revalidate (304): p50={results['revalidate_p50_s']}s "
        f"p99={results['revalidate_p99_s']}s; "
        f"ingest: p50={results['ingest_p50_s']}s "
        f"max={results['ingest_max_s']}s over "
        f"{len(ingest_latencies)} batches, {engine.stats.releases} releases"
    )

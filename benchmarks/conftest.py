"""Shared configuration for the paper-reproduction benchmarks.

Each benchmark file regenerates one table or figure of the paper at
laptop scale (sizes documented in DESIGN.md) and asserts the paper's
*qualitative* shape — who wins, what grows, where trends point — rather
than absolute numbers.  The printed tables are the paper-figure series;
run with ``pytest benchmarks/ --benchmark-only -s`` to see them.
"""

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def run_once(benchmark, fn):
    """Benchmark ``fn`` with a single timed round (experiments are long).

    When the experiment returns an :class:`repro.bench.Experiment`, its
    series are also dumped to ``benchmarks/results/<figure>.csv`` so the
    paper-figure data can be plotted downstream.
    """
    result = benchmark.pedantic(fn, rounds=1, iterations=1)
    try:
        from repro.bench.harness import Experiment
        from repro.bench.reporting import experiment_to_csv

        if isinstance(result, Experiment):
            RESULTS_DIR.mkdir(exist_ok=True)
            experiment_to_csv(result, RESULTS_DIR / f"{result.figure}.csv")
    except OSError:
        pass  # results dump is best-effort; the bench itself already ran
    return result


@pytest.fixture
def once():
    return run_once

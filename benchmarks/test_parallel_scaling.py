"""Scaling benchmark: component-parallel coloring vs worker count.

Runs a multi-component DiverseClustering workload (popsyn, n=4000, 16
disjoint single-attribute constraints → 16 components on the vectorized
backend) through ``component_coloring`` at workers ∈ {1, 2, 4} with the
process executor, and records the curve through the run registry
(``benchmarks/results/runs/`` plus the ``BENCH_parallel.json`` duplicate
at the repo root) together with the host's core count and the
shared-memory telemetry.

Correctness assertions run unconditionally on any host:

* pooled outputs (assignment, clustering, stats) are byte-identical to
  the sequential run at every worker count;
* the non-``parallel.*`` observability counters merge identically;
* the shared-memory export is O(1) in the number of components — the
  same relation costs the same bytes whether Σ splits into 8 or 16
  components, because per-task payloads carry constraints, never data.

The ≥2× wall-clock speedup assertion is gated on the host actually
having ≥4 usable cores — on smaller containers the curve is still
measured and recorded, but elapsed time cannot improve without
parallel hardware.

Excluded from tier-1 runs by the ``bench`` marker; run with::

    PYTHONPATH=src python -m pytest benchmarks/test_parallel_scaling.py -m bench -s -p no:cacheprovider
"""

from __future__ import annotations

import os
import time

import pytest

from repro import obs
from repro.bench.reporting import write_bench_artifact
from repro.core.constraints import ConstraintSet, DiversityConstraint
from repro.core.graph import build_graph
from repro.core.index import use_kernel_backend
from repro.core.parallel import component_coloring
from repro.data.datasets import make_popsyn

pytestmark = [pytest.mark.bench, pytest.mark.parallel]

N_ROWS = 4_000
K = 6
MAX_CANDIDATES = 96
SEED = 11
LOWER, UPPER = 3, 18
WORKER_COUNTS = (1, 2, 4)
REPEATS = 3


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _workload(n_components: int):
    """Popsyn relation + one constraint per CTY value (disjoint Iσ)."""
    relation = make_popsyn(seed=0, n_rows=N_ROWS)
    position = relation.schema.position("CTY")
    values = sorted({row[position] for _, row in relation})[:n_components]
    sigma = ConstraintSet(
        DiversityConstraint("CTY", v, LOWER, UPPER) for v in values
    )
    return relation, sigma


def _solve(relation, sigma, **kwargs):
    with obs.collecting() as collector:
        result = component_coloring(
            relation,
            sigma,
            k=K,
            max_candidates=MAX_CANDIDATES,
            seed=SEED,
            **kwargs,
        )
    return result, dict(collector.counters)


def _algorithmic(counters: dict) -> dict:
    return {
        key: value
        for key, value in counters.items()
        if not key.startswith("parallel.")
    }


def _best_time(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_parallel_scaling_curve():
    with use_kernel_backend("vectorized"):
        relation, sigma = _workload(16)
        n_components = len(
            build_graph(relation, sigma).connected_components()
        )
        assert n_components >= 8, "workload must be multi-component"

        seq_result, seq_counters = _solve(relation, sigma)
        assert seq_result.success

        rows = []
        times: dict[int, float] = {}
        for workers in WORKER_COUNTS:
            kwargs = (
                {}
                if workers == 1
                else {"max_workers": workers, "executor": "process"}
            )
            result, counters = _solve(relation, sigma, **kwargs)

            # Equivalence is unconditional: same assignment, clustering,
            # search stats and algorithmic counters at every scale.
            assert result.success
            assert result.assignment == seq_result.assignment
            assert result.clustering == seq_result.clustering
            assert result.stats == seq_result.stats
            assert _algorithmic(counters) == _algorithmic(seq_counters)

            elapsed = _best_time(lambda: _solve(relation, sigma, **kwargs))
            times[workers] = elapsed
            rows.append(
                {
                    "workers": workers,
                    "executor": "process" if workers > 1 else "sequential",
                    "seconds": round(elapsed, 4),
                    "tasks_dispatched": counters.get(
                        obs.PARALLEL_TASKS_DISPATCHED, 0
                    ),
                    "shm_bytes_exported": counters.get(
                        obs.PARALLEL_SHM_BYTES_EXPORTED, 0
                    ),
                }
            )

        # O(1) relation transport: halving the component count must not
        # change the exported byte volume (it depends on |R|, not |Σ|).
        relation8, sigma8 = _workload(8)
        _, counters8 = _solve(
            relation8, sigma8, max_workers=4, executor="process"
        )
        _, counters16 = _solve(
            relation, sigma, max_workers=4, executor="process"
        )
        bytes8 = counters8[obs.PARALLEL_SHM_BYTES_EXPORTED]
        bytes16 = counters16[obs.PARALLEL_SHM_BYTES_EXPORTED]
        assert bytes8 == bytes16 > 0

        cores = _usable_cores()
        speedup = times[1] / times[4] if times[4] else float("inf")
        results = {
            "workload": {
                "dataset": "popsyn",
                "n_rows": N_ROWS,
                "n_components": n_components,
                "k": K,
                "max_candidates": MAX_CANDIDATES,
                "backend": "vectorized",
            },
            "cores": cores,
            "curve": rows,
            "speedup_4_workers": round(speedup, 3),
            "shm_bytes_invariant_in_components": {
                "components_8": bytes8,
                "components_16": bytes16,
            },
        }
        write_bench_artifact(
            "parallel",
            results,
            config=results["workload"],
            metrics={
                f"workers{row['workers']}_s": row["seconds"] for row in rows
            },
        )
        print("\nwrote BENCH_parallel.json (+ registry record)")
        for row in rows:
            print(
                f"  workers={row['workers']} ({row['executor']}): "
                f"{row['seconds']}s"
            )
        print(f"  speedup at 4 workers: {speedup:.2f}x on {cores} core(s)")

        if cores >= 4:
            assert speedup >= 2.0, (
                f"expected >=2x at 4 workers on {cores} cores, "
                f"got {speedup:.2f}x"
            )
        else:
            print(
                f"  (speedup gate skipped: {cores} usable core(s) < 4 — "
                "wall-clock cannot scale without parallel hardware)"
            )

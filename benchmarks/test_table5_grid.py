"""Table 5 — parameter values.

The sweep grid is data, not computation; this bench validates the encoded
grid against the paper (defaults in bold there) and exercises one full
default-configuration DIVA run so the defaults are known-good.
"""

from repro.bench import run_diva_point
from repro.data.datasets import load_dataset
from repro.workloads.constraint_gen import proportion_constraints
from repro.workloads.sweeps import N_TRIALS, PARAM_DEFAULTS, PARAM_GRID, SCALE


def test_table5_grid_matches_paper(once, benchmark):
    def check():
        # The grid divided by SCALE must reproduce the paper's numbers.
        assert [v * SCALE for v in PARAM_GRID["n_rows"]] == [
            60_000, 120_000, 180_000, 240_000, 300_000,
        ]
        assert PARAM_GRID["n_constraints"] == [4, 8, 12, 16, 20]
        assert PARAM_GRID["conflict_rate"] == [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
        assert PARAM_GRID["k"] == [10, 20, 30, 40, 50]
        assert N_TRIALS == 5  # "average runtime over five executions"
        for key, default in PARAM_DEFAULTS.items():
            assert default in PARAM_GRID[key], key
        # One run at the default configuration (scaled down further so the
        # bench stays fast) must succeed end to end.
        relation = load_dataset(
            "census", seed=0, n_rows=PARAM_DEFAULTS["n_rows"] // 4
        )
        constraints = proportion_constraints(
            relation, PARAM_DEFAULTS["n_constraints"], k=5, seed=0
        )
        return run_diva_point(relation, constraints, 5, "maxfanout")

    point = once(benchmark, check)
    print(
        f"\nTable 5 defaults run: accuracy={point.accuracy:.3f} "
        f"runtime={point.runtime:.2f}s dropped={point.extras['dropped']}"
    )
    assert 0.0 <= point.accuracy <= 1.0

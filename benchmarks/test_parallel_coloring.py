"""Extension bench — component-parallel diverse clustering (paper §6).

Not a paper artifact: the paper proposes a distributed coloring as future
work.  This bench checks the decomposition's two properties on a Σ with
many independent components: identical results to the monolithic search,
and no extra search effort (the component searches do exactly the
monolithic work, partitioned).
"""

import numpy as np

from repro.core.coloring import diverse_clustering
from repro.core.constraints import ConstraintSet, DiversityConstraint
from repro.core.graph import build_graph
from repro.core.parallel import component_coloring
from repro.core.suppress import suppress
from repro.data.datasets import make_popsyn


def _many_component_sigma(relation, k):
    """One constraint per ethnicity value: disjoint targets, many components."""
    constraints = []
    for value, count in sorted(relation.value_counts("ETH").items()):
        if count >= 2 * k:
            constraints.append(
                DiversityConstraint("ETH", value, k, count)
            )
    return ConstraintSet(constraints)


def test_component_parallel_coloring(once, benchmark):
    relation = make_popsyn(seed=4, n_rows=400)
    k = 5
    constraints = _many_component_sigma(relation, k)
    graph = build_graph(relation, constraints)
    n_components = len(graph.connected_components())
    assert n_components == len(constraints)  # fully independent

    def run_both():
        mono = diverse_clustering(relation, constraints, k, strategy="maxfanout")
        comp = component_coloring(
            relation, constraints, k, strategy="maxfanout", max_workers=4
        )
        return mono, comp

    mono, comp = once(benchmark, run_both)
    print(
        f"\nParallel coloring: {n_components} components; "
        f"monolithic effort={mono.stats.candidates_tried}, "
        f"component effort={comp.stats.candidates_tried}"
    )
    assert mono.success and comp.success
    suppressed = suppress(relation, comp.clustering)
    assert constraints.is_satisfied_by(suppressed)
    # Decomposition does not inflate search effort.
    assert comp.stats.candidates_tried <= 2 * max(mono.stats.candidates_tried, 1)

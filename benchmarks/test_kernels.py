"""Micro-benchmarks: vectorized kernels vs the pure-Python reference.

Times each DIVA hot-path kernel on a census-shaped relation under both
backends and records the results through the run registry
(``benchmarks/results/runs/`` plus the ``BENCH_kernels.json`` duplicate at
the repo root) — ``(op, n, reference_s, vectorized_s, speedup)`` rows — so
the perf trajectory of the columnar kernel layer is tracked from the PR
that introduced it onward.

Excluded from tier-1 runs by the ``bench`` marker (``pyproject.toml``
defaults to ``-m "not bench"``); run with::

    PYTHONPATH=src python -m pytest benchmarks/test_kernels.py -m bench -s -p no:cacheprovider

Timing method: best-of-N wall clock per op.  Index construction is *not*
inside the timed region (one build is amortized over the thousands of
kernel calls a coloring search makes) but is reported separately in the
JSON as ``index_build``.  The per-repeat cluster sets are rotated so the
vectorized timings exercise fresh computations rather than the memo cache.
"""

from __future__ import annotations

import time
from collections import Counter

import numpy as np
import pytest

from repro.bench.reporting import write_bench_artifact
from repro.core.clusterings import (
    cluster_suppression_cost_reference,
    greedy_k_partition,
    preserved_count_reference,
    qi_distance_reference,
)
from repro.core.constraints import DiversityConstraint
from repro.core.index import RelationIndex
from repro.data.datasets import make_census

pytestmark = pytest.mark.bench

N_ROWS = 10_000
CLUSTER_SIZE = 10
PAIRWISE_N = 2_000
PARTITION_N = 2_000


def _best_time(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _qi_rows_of(relation):
    schema = relation.schema
    positions = [schema.position(a) for a in schema.qi_names]
    return {
        tid: tuple(relation.row(tid)[p] for p in positions)
        for tid, _ in relation
    }


def _partitions(tids: list[int], offset: int) -> tuple[frozenset, ...]:
    """Disjoint clusters of CLUSTER_SIZE, rotated by ``offset`` so each
    repeat presents clusters the memo caches have not seen."""
    rotated = tids[offset:] + tids[:offset]
    return tuple(
        frozenset(rotated[i:i + CLUSTER_SIZE])
        for i in range(0, len(rotated) - CLUSTER_SIZE + 1, CLUSTER_SIZE)
    )


def test_kernel_speedups():
    relation = make_census(seed=0, n_rows=N_ROWS)
    tids = list(relation.tids)
    position = relation.schema.position
    # Multi-attribute X[t] mixing QI and sensitive attributes — the general
    # constraint shape of Definition 2.2, and the one preserved_count is
    # scored against inside the coloring search.  Target the modal value
    # combination so Iσ is large enough for stable timings.
    attrs = ("RACE", "SEX", "INCOME")
    values = Counter(
        tuple(row[position(a)] for a in attrs) for _, row in relation
    ).most_common(1)[0][0]
    sigma = DiversityConstraint(attrs, values, 1, N_ROWS)

    t_build = _best_time(lambda: RelationIndex(relation), repeats=3)
    index = RelationIndex(relation)
    qi_rows = _qi_rows_of(relation)

    results = [
        {
            "op": "index_build",
            "n": N_ROWS,
            "reference_s": None,
            "vectorized_s": round(t_build, 6),
            "speedup": None,
        }
    ]

    def record(op: str, n: int, reference_s: float, vectorized_s: float):
        results.append(
            {
                "op": op,
                "n": n,
                "reference_s": round(reference_s, 6),
                "vectorized_s": round(vectorized_s, 6),
                "speedup": round(reference_s / vectorized_s, 2),
            }
        )

    # -- preserved_count over a full disjoint clustering ---------------------
    # Clusters are drawn from Iσ, matching the shape the coloring search
    # scores: candidate clusters are built from σ's target tuples, so they
    # are uniform on the target attributes and the count has to examine
    # every row rather than bail on the first mismatched QI value.
    pool = sorted(sigma.target_tids(relation))
    ref_parts = iter([_partitions(pool, i) for i in range(15)])
    vec_parts = iter([_partitions(pool, 50 + i) for i in range(15)])
    ref_s = _best_time(
        lambda: preserved_count_reference(relation, next(ref_parts), sigma),
        repeats=15,
    )
    vec_s = _best_time(
        lambda: index.preserved_count_many(next(vec_parts), sigma),
        repeats=15,
    )
    record("preserved_count", N_ROWS, ref_s, vec_s)

    # -- pairwise QI Hamming matrix ------------------------------------------
    sub = tids[:PAIRWISE_N]

    def pairwise_reference():
        rows = [qi_rows[t] for t in sub]
        return [
            [sum(1 for x, y in zip(a, b) if x != y) for b in rows] for a in rows
        ]

    ref_s = _best_time(pairwise_reference, repeats=1)
    vec_s = _best_time(lambda: index.pairwise_qi_hamming(sub), repeats=3)
    record("pairwise_qi_hamming", PAIRWISE_N, ref_s, vec_s)

    # -- single-seed Hamming scan (candidate seeding) ------------------------
    seed = tids[0]
    ref_s = _best_time(
        lambda: [qi_distance_reference(relation, seed, t) for t in tids]
    )
    vec_s = _best_time(lambda: index.hamming_from(seed, tids))
    record("hamming_from", N_ROWS, ref_s, vec_s)

    # -- suppression-cost scoring --------------------------------------------
    ref_parts = iter([_partitions(tids, i) for i in range(5)])
    vec_parts = iter([_partitions(tids, 70 + i) for i in range(5)])
    ref_s = _best_time(
        lambda: sum(
            cluster_suppression_cost_reference(relation, c)
            for c in next(ref_parts)
        )
    )
    vec_s = _best_time(lambda: index.clustering_cost(next(vec_parts)))
    record("suppression_cost", N_ROWS, ref_s, vec_s)

    # -- greedy k-partition ---------------------------------------------------
    items = tuple(tids[:PARTITION_N])
    ref_s = _best_time(
        lambda: greedy_k_partition(items, CLUSTER_SIZE, qi_rows=qi_rows),
        repeats=3,
    )
    vec_s = _best_time(
        lambda: greedy_k_partition(items, CLUSTER_SIZE, index=index), repeats=3
    )
    record("greedy_k_partition", PARTITION_N, ref_s, vec_s)

    write_bench_artifact(
        "kernels",
        {"results": results},
        config={"n_rows": N_ROWS, "cluster_size": CLUSTER_SIZE},
        metrics={
            f"{r['op']}_s": r["vectorized_s"] for r in results
        },
    )
    by_op = {r["op"]: r for r in results}
    for line in results:
        print(line)

    # Acceptance: ≥ 5× on the two headline kernels at n ≥ 2000.
    assert by_op["preserved_count"]["speedup"] >= 5.0
    assert by_op["pairwise_qi_hamming"]["speedup"] >= 5.0


def test_equivalence_at_bench_scale():
    """The two backends agree on the bench-sized relation too (the property
    tests cover small random relations; this pins the large shapes)."""
    relation = make_census(seed=1, n_rows=500)
    tids = list(relation.tids)
    index = RelationIndex(relation)
    qi_rows = _qi_rows_of(relation)
    sigma = DiversityConstraint(
        "RACE",
        relation.row(tids[0])[relation.schema.position("RACE")],
        1,
        500,
    )
    clusters = _partitions(tids, 7)
    assert sum(
        index.preserved_count(c, sigma) for c in clusters
    ) == preserved_count_reference(relation, clusters, sigma)
    assert greedy_k_partition(
        tuple(tids), CLUSTER_SIZE, index=index
    ) == greedy_k_partition(tuple(tids), CLUSTER_SIZE, qi_rows=qi_rows)
    rng_rows = np.random.default_rng(0).choice(tids, size=64, replace=False)
    sample = [int(t) for t in rng_rows]
    matrix = index.pairwise_qi_hamming(sample)
    for i, a in enumerate(sample):
        for j, b in enumerate(sample):
            assert matrix[i, j] == qi_distance_reference(relation, a, b)

"""Micro-benchmarks for the core primitives (performance regression guard).

Not a paper artifact — these measure the hot operations (suppression,
candidate enumeration, consistency-checked coloring, and the three baseline
anonymizers) at a fixed size, with proper multi-round statistics, so a
future change that regresses the core shows up as a benchmark delta.
"""

import numpy as np
import pytest

from repro.anonymize import make_anonymizer
from repro.core.clusterings import enumerate_clusterings
from repro.core.coloring import ColoringSearch
from repro.core.constraints import DiversityConstraint
from repro.core.suppress import suppress
from repro.data.datasets import make_popsyn
from repro.workloads.constraint_gen import proportion_constraints

N_ROWS = 300
K = 5


@pytest.fixture(scope="module")
def relation():
    return make_popsyn(seed=30, n_rows=N_ROWS)


@pytest.fixture(scope="module")
def clusters(relation):
    tids = list(relation.tids)
    return [set(tids[i:i + K]) for i in range(0, N_ROWS, K)]


def test_micro_suppress(benchmark, relation, clusters):
    result = benchmark(suppress, relation, clusters)
    assert len(result) == N_ROWS


def test_micro_enumerate_clusterings(benchmark, relation):
    value, count = relation.value_counts("ETH").most_common(1)[0]
    sigma = DiversityConstraint("ETH", value, K, count)

    def run():
        return enumerate_clusterings(
            relation, sigma, K, max_candidates=32,
            rng=np.random.default_rng(0),
        )

    candidates = benchmark(run)
    assert 0 < len(candidates) <= 32


def test_micro_coloring(benchmark, relation):
    constraints = proportion_constraints(relation, 6, k=K, seed=30)

    def run():
        search = ColoringSearch(
            relation, constraints, K,
            strategy="maxfanout", rng=np.random.default_rng(0),
        )
        return search.run()

    result = benchmark(run)
    assert result.success


@pytest.mark.parametrize("algorithm", ["k-member", "oka", "mondrian"])
def test_micro_anonymizers(benchmark, relation, algorithm):
    def run():
        anonymizer = make_anonymizer(algorithm, np.random.default_rng(0))
        return anonymizer.anonymize(relation, K)

    anonymized = benchmark(run)
    assert len(anonymized) == N_ROWS

"""Figure 5a — accuracy vs k (German Credit).

Paper shape: accuracy declines as k grows for every algorithm (bigger
QI-groups are less discernible), and DIVA's accuracy is comparable to the
plain k-anonymization baselines *while additionally satisfying Σ*.

We assert the per-algorithm decline and that DIVA's best variant stays
within a small margin of the best baseline at every k.
"""

from repro.bench import experiment_table, fig5ab_vs_k

K_VALUES = (5, 10, 15)
DIVA = ("minchoice", "maxfanout")
BASELINES = ("k-member", "oka", "mondrian")


def test_fig5a_accuracy_vs_k(once, benchmark):
    experiment = once(
        benchmark,
        lambda: fig5ab_vs_k(
            k_values=K_VALUES, n_rows=600, n_constraints=6, seed=0
        ),
    )
    print("\nFigure 5a — accuracy vs k (Credit):")
    print(experiment_table(experiment, "accuracy"))

    for algorithm, points in experiment.series.items():
        by_x = {p.x: p for p in points}
        assert by_x[max(K_VALUES)].accuracy < by_x[min(K_VALUES)].accuracy, (
            f"{algorithm}: accuracy should decline with k"
        )

    for k in K_VALUES:
        diva_best = max(
            p.accuracy
            for name in DIVA
            for p in experiment.series[name]
            if p.x == k
        )
        baseline_best = max(
            p.accuracy
            for name in BASELINES
            for p in experiment.series[name]
            if p.x == k
        )
        baseline_worst = min(
            p.accuracy
            for name in BASELINES
            for p in experiment.series[name]
            if p.x == k
        )
        # Comparable to the best baseline (diversity costs a little), and
        # clearly better than the weakest baseline.
        assert diva_best >= baseline_best - 0.12, (
            f"k={k}: DIVA ({diva_best:.3f}) should be comparable to the "
            f"best baseline ({baseline_best:.3f})"
        )
        assert diva_best > baseline_worst, (
            f"k={k}: DIVA should beat the weakest baseline"
        )

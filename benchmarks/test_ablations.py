"""Ablation benches for the design choices DESIGN.md calls out.

Not a paper artifact — these quantify the contribution of (a) the candidate
cap, (b) the dynamic residual-pool candidates, and (c) the constraint class
choice (the paper's stated reason for running proportion constraints).
"""

from repro.bench.ablation import (
    ablation_candidate_cap,
    ablation_constraint_class,
    ablation_dynamic_candidates,
    ablation_refinement,
)
from repro.bench.reporting import experiment_table


def test_ablation_candidate_cap(once, benchmark):
    experiment = once(benchmark, ablation_candidate_cap)
    print("\nAblation — max_candidates cap:")
    print(experiment_table(experiment, "accuracy"))
    print(experiment_table(experiment, "dropped"))
    points = experiment.series["maxfanout"]
    by_cap = {p.x: p for p in points}
    # A larger candidate pool never drops more constraints.
    caps = sorted(by_cap)
    assert by_cap[caps[-1]].extras["dropped"] <= by_cap[caps[0]].extras["dropped"]


def test_ablation_dynamic_candidates(once, benchmark):
    outcome = once(benchmark, ablation_dynamic_candidates)
    print(f"\nAblation — dynamic residual candidates: {outcome}")
    dynamic, static = outcome["dynamic"], outcome["static"]
    # The nested-constraint instance is solvable only through the dynamic
    # refinement: static pools collide and exhaust, dynamic coordinates.
    assert dynamic["success"] and not static["success"]
    assert dynamic["candidates_tried"] < static["candidates_tried"]


def test_ablation_refinement(once, benchmark):
    outcome = once(benchmark, ablation_refinement)
    print(f"\nAblation — suppression-minimality refinement: {outcome}")
    # The polish never hurts: stars monotonically non-increasing, accuracy
    # monotonically non-decreasing.
    assert outcome["stars_after"] <= outcome["stars_before"]
    assert outcome["accuracy_after"] >= outcome["accuracy_before"] - 1e-9
    assert outcome["stars_saved"] == (
        outcome["stars_before"] - outcome["stars_after"]
    )


def test_ablation_constraint_class(once, benchmark):
    experiment = once(benchmark, ablation_constraint_class)
    print("\nAblation — constraint class (paper ran proportions):")
    print(experiment_table(experiment, "accuracy"))
    print(experiment_table(experiment, "dropped"))
    for name, points in experiment.series.items():
        for point in points:
            assert 0.0 <= point.accuracy <= 1.0
    # Proportion constraints are satisfiable on their own terms (the
    # paper's reason for preferring them: less sensitivity than average).
    proportion = experiment.series["proportion"][0]
    average = experiment.series["average"][0]
    assert proportion.extras["dropped"] <= average.extras["dropped"]

"""Figure 5b — runtime vs k (German Credit).

Paper shape: the DIVA variants (MinChoice, MaxFanOut) cost more time than
the plain baselines — the price of computing a diverse instance — and DIVA's
runtime does not explode with k (the paper even observes a mild decrease, as
more aggressive suppression lets the coloring prune undersized clusterings).

We assert DIVA > the cheapest baselines (k-member, mondrian) in runtime at
every k, and that DIVA's runtime stays within a bounded factor across the
k sweep (no blow-up in k).
"""

from repro.bench import experiment_table, fig5ab_vs_k

K_VALUES = (5, 10, 15)
DIVA = ("minchoice", "maxfanout")


def test_fig5b_runtime_vs_k(once, benchmark):
    experiment = once(
        benchmark,
        lambda: fig5ab_vs_k(
            k_values=K_VALUES, n_rows=600, n_constraints=6, seed=0
        ),
    )
    print("\nFigure 5b — runtime (s) vs k (Credit):")
    print(experiment_table(experiment, "runtime"))

    for k in K_VALUES:
        diva_min = min(
            p.runtime for name in DIVA for p in experiment.series[name] if p.x == k
        )
        fast_baselines = min(
            p.runtime
            for name in ("k-member", "mondrian")
            for p in experiment.series[name]
            if p.x == k
        )
        assert diva_min > fast_baselines, (
            f"k={k}: DIVA should cost more than the plain baselines "
            "(the price of diversity)"
        )

    for name in DIVA:
        times = [p.runtime for p in experiment.series[name]]
        assert max(times) < 50 * min(times), (
            f"{name}: runtime should not blow up across the k sweep"
        )

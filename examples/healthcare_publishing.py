"""Diverse publication of medical records (the paper's motivating scenario).

A hospital wants to share an anonymized extract of patient records with a
pharmaceutical partner.  Plain k-anonymization (Table 2 of the paper) wipes
out the African and Caucasian ethnicities from one group and the Female
gender from another — the published extract misrepresents the patient
population.  This example quantifies that loss on a synthetic population and
shows how DIVA guarantees minority representation at a modest accuracy cost.

Run:

    python examples/healthcare_publishing.py
"""

from repro import (
    ConstraintSet,
    DiversityConstraint,
    KMemberAnonymizer,
    accuracy,
    check_diversity,
    is_k_anonymous,
    make_popsyn,
    run_diva,
    star_ratio,
)

K = 5


def minority_constraints(relation) -> ConstraintSet:
    """Require every ethnicity to keep at least half its representation."""
    constraints = []
    for value, count in sorted(relation.value_counts("ETH").items()):
        lower = max(K, count // 2)
        constraints.append(DiversityConstraint("ETH", value, lower, count))
    return ConstraintSet(constraints)


def report(title, relation, k, sigma) -> None:
    verdicts = check_diversity(relation, sigma)
    satisfied = sum(1 for v in verdicts if v.satisfied)
    print(f"\n{title}")
    print(f"  k-anonymous (k={k}):    {is_k_anonymous(relation, k)}")
    print(f"  accuracy:               {accuracy(relation, k):.3f}")
    print(f"  suppressed QI cells:    {star_ratio(relation):.1%}")
    print(f"  diversity constraints:  {satisfied}/{len(verdicts)} satisfied")
    for verdict in verdicts:
        marker = "✓" if verdict.satisfied else "✗"
        print(
            f"    {marker} {verdict.constraint!r}: count {verdict.count}"
        )


def main() -> None:
    # A synthetic patient population (Pop-Syn, zipfian skew: ethnic
    # minorities are genuinely rare, as in the paper's motivation).
    patients = make_popsyn(seed=42, n_rows=400, distribution="zipfian")
    sigma = minority_constraints(patients)
    print(f"Patient relation: {patients}")
    print(f"Ethnicity distribution: {dict(patients.value_counts('ETH'))}")

    # Plain k-member anonymization: no diversity guarantees.
    plain = KMemberAnonymizer().anonymize(patients, K)
    report("Plain k-member anonymization", plain, K, sigma)

    # DIVA: same privacy level, diversity guaranteed.
    result = run_diva(patients, sigma, K, best_effort=True)
    report("DIVA (MaxFanOut)", result.relation, K, sigma)
    if result.dropped:
        print(f"  (dropped as unsatisfiable: {list(result.dropped)})")

    print(
        "\nDIVA preserves every ethnicity's minimum representation; the "
        "plain baseline loses whichever groups its clusters happened to mix."
    )


if __name__ == "__main__":
    main()

"""Quickstart: the paper's running example end to end.

Reproduces Example 3.1 — Table 1's medical-records relation, k = 2, and
Σ = {σ1, σ2, σ3} — and prints the published relation (compare with Table 3
of the paper).  Run:

    python examples/quickstart.py
"""

from repro import (
    ConstraintSet,
    DiversityConstraint,
    KSigmaProblem,
    check_diversity,
    is_k_anonymous,
    make_running_example,
    run_diva,
    star_count,
)


def main() -> None:
    relation = make_running_example()
    print(f"Original relation: {relation}")
    for tid, row in relation:
        print(f"  t{tid}: {row}")

    # Σ of Example 3.1: between 2 and 5 Asians, 1–3 Africans, 2–4 Vancouver
    # residents must remain visible in the published instance.
    sigma = ConstraintSet(
        [
            DiversityConstraint("ETH", "Asian", 2, 5),
            DiversityConstraint("ETH", "African", 1, 3),
            DiversityConstraint("CTY", "Vancouver", 2, 4),
        ]
    )
    k = 2
    print(f"\nDiversity constraints: {sigma}")
    print(f"Privacy parameter: k = {k}")

    result = run_diva(relation, sigma, k)

    print("\nDiverse clustering SΣ (tids):")
    for cluster in result.clustering:
        print(f"  {sorted(cluster)}")

    print("\nPublished relation R' (★ = suppressed):")
    for tid, row in sorted(result.relation):
        print(f"  g{tid}: {row}")

    print(f"\nInformation loss: {star_count(result.relation)} suppressed cells")
    print(f"k-anonymous (k={k}): {is_k_anonymous(result.relation, k)}")
    print("Diversity verdicts:")
    for verdict in check_diversity(result.relation, sigma):
        status = "OK " if verdict.satisfied else "FAIL"
        print(
            f"  [{status}] {verdict.constraint!r}: count = {verdict.count}"
        )

    failures = KSigmaProblem(relation, sigma, k).validate_solution(result.relation)
    assert not failures, failures
    print("\nSolution validated against Definition 2.4 ✓")


if __name__ == "__main__":
    main()

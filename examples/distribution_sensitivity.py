"""Data-distribution sensitivity (mirrors Figure 4d).

Generates the Pop-Syn population under Zipfian, uniform and Gaussian value
distributions and measures DIVA's output accuracy for each — reproducing the
paper's finding that uniform domains anonymize most accurately (values are
spread evenly, so diverse clusters need little suppression) while Zipfian
skew concentrates contention on a few tuples.

Run:

    python examples/distribution_sensitivity.py
"""

from repro import Diva, accuracy, make_popsyn, proportion_constraints, star_ratio

K = 5
N_ROWS = 500
N_CONSTRAINTS = 8


def main() -> None:
    print(f"Pop-Syn, |R| = {N_ROWS}, |Σ| = {N_CONSTRAINTS}, k = {K}\n")
    print(f"{'distribution':<12} {'accuracy':>9} {'stars':>8} {'dropped':>8}")
    for distribution in ("zipfian", "uniform", "gaussian"):
        relation = make_popsyn(
            seed=7, n_rows=N_ROWS, distribution=distribution
        )
        sigma = proportion_constraints(relation, N_CONSTRAINTS, k=K, seed=7)
        solver = Diva(strategy="maxfanout", best_effort=True, seed=0)
        result = solver.run(relation, sigma, K)
        print(
            f"{distribution:<12} {accuracy(result.relation, K):>9.3f} "
            f"{star_ratio(result.relation):>8.1%} {len(result.dropped):>8}"
        )

    print(
        "\nUniform domains spread characteristic values evenly across "
        "tuples, avoiding contention among constraint clusters; Zipfian "
        "skew concentrates target tuples and forces costlier clusterings."
    )


if __name__ == "__main__":
    main()

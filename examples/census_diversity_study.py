"""Strategy study on the Census dataset (mirrors Figures 4a/4b).

Sweeps the number of diversity constraints |Σ| on a census-like relation and
compares DIVA's three selection strategies on runtime, search effort and
output accuracy — a miniature of the paper's Figure 4a/4b experiment you can
run in under a minute.

Run:

    python examples/census_diversity_study.py
"""

import time

from repro import Diva, accuracy, make_census, proportion_constraints

K = 5
N_ROWS = 300
STRATEGIES = ("minchoice", "maxfanout", "basic")


def main() -> None:
    relation = make_census(seed=0, n_rows=N_ROWS)
    print(f"Census relation: |R| = {len(relation)}, "
          f"n = {len(relation.schema)} attributes, "
          f"|ΠQI(R)| = {relation.distinct_projection_size()}")

    header = f"{'|Σ|':>4} " + "".join(
        f"{s:>34}" for s in STRATEGIES
    )
    print("\n" + header)
    print(" " * 5 + "   time    accuracy  backtracks" * len(STRATEGIES))
    for n_constraints in (4, 8, 12):
        sigma = proportion_constraints(
            relation, n_constraints, k=K, seed=n_constraints
        )
        cells = []
        for strategy in STRATEGIES:
            solver = Diva(strategy=strategy, best_effort=True, seed=0)
            start = time.perf_counter()
            result = solver.run(relation, sigma, K)
            elapsed = time.perf_counter() - start
            cells.append(
                f"{elapsed:7.2f}s  {accuracy(result.relation, K):8.3f}  "
                f"{result.stats.backtracks:10d}"
            )
        print(f"{n_constraints:>4} " + "".join(f"{c:>34}" for c in cells))

    print(
        "\nMinChoice and MaxFanOut order the search to prune early; "
        "Basic's random ordering backtracks more as |Σ| grows "
        "(the paper's Figure 4a blow-up)."
    )


if __name__ == "__main__":
    main()

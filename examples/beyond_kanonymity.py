"""Beyond k-anonymity: the paper's §5/§6 extensions in one pipeline.

Shows the three extension hooks this library implements around DIVA:

1. an l-diversity-aware clustering criterion in the Anonymize phase,
2. generalization hierarchies instead of stars for geographic attributes,
3. randomized response (local DP) on the sensitive attribute, with the
   unbiased frequency estimator analysts use to recover the distribution.

Run:

    python examples/beyond_kanonymity.py
"""

from repro import (
    ConstraintSet,
    DiversityConstraint,
    check_l_diversity,
    is_k_anonymous,
    make_popsyn,
    run_diva,
)
from repro.anonymize import LDiverseKMemberAnonymizer
from repro.data.datasets import PROVINCES
from repro.generalize import ValueHierarchy, generalization_loss, generalize_clusters
from repro.privacy import RandomizedResponse, randomize_relation

K, L = 4, 2


def main() -> None:
    patients = make_popsyn(seed=3, n_rows=300)
    sigma = ConstraintSet(
        [
            DiversityConstraint("ETH", "African", K, 3 * K),
            DiversityConstraint("ETH", "Indigenous", K, 3 * K),
        ]
    )

    # 1. DIVA with an l-diverse Anonymize phase.
    result = run_diva(
        patients, sigma, K,
        anonymizer=LDiverseKMemberAnonymizer(l=L),
        best_effort=True,
    )
    print(f"k-anonymous (k={K}): {is_k_anonymous(result.relation, K)}")
    remainder = result.r_k
    if remainder is not None and len(remainder):
        report = check_l_diversity(remainder, L)
        print(f"remainder l-diverse (l={L}): {report.satisfied}")
    print(f"diversity constraints satisfied: {sigma.is_satisfied_by(result.relation)}")

    # 2. Generalize geography through a hierarchy instead of starring it.
    city_parents = {
        city: prv for prv, cities in PROVINCES.items() for city in cities
    }
    city_parents.update({prv: "Canada" for prv in PROVINCES})
    hierarchies = {"CTY": ValueHierarchy.from_parents(city_parents)}
    recoded = generalize_clusters(patients, result.clustering, hierarchies)
    loss = generalization_loss(patients, recoded, hierarchies)
    print(f"\nhierarchy recoding of SΣ: information loss {loss:.1%} "
          "(cities roll up to provinces before vanishing)")
    sample_tid = next(iter(result.clustering[0]))
    print(f"  e.g. t{sample_tid}: CTY {patients.value(sample_tid, 'CTY')!r} "
          f"→ {recoded.value(sample_tid, 'CTY')!r}")

    # 3. Local DP on the diagnosis column (future work §6).
    randomized, epsilon = randomize_relation(
        result.relation, {"DIAG": 1.0}, seed=0
    )
    print(f"\nrandomized response on DIAG: total ε = {epsilon}")
    domain = sorted(
        {v for (v,) in result.relation.project(['DIAG'])}, key=str
    )
    mechanism = RandomizedResponse(domain, 1.0)
    reported = [v for (v,) in randomized.project(["DIAG"])]
    estimates = mechanism.estimate_counts(reported)
    truth = result.relation.value_counts("DIAG")
    print("  diagnosis    true  estimated")
    for value in domain[:5]:
        print(f"  {value:<12} {truth[value]:>4}  {estimates[value]:>9.1f}")


if __name__ == "__main__":
    main()
